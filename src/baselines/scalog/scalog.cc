#include "src/baselines/scalog/scalog.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/rpc/rpc_methods.h"

namespace lazylog {

namespace {

// Cut assignment entry disseminated with each committed cut.
struct CutRange {
  static constexpr size_t kMinEncodedSize = 32;  // four u64 fields
  uint64_t shard = 0;
  uint64_t global_start = 0;
  uint64_t local_start = 0;
  uint64_t count = 0;
  void Encode(Encoder& e) const {
    e.PutU64(shard);
    e.PutU64(global_start);
    e.PutU64(local_start);
    e.PutU64(count);
  }
  bool Decode(Decoder& d) {
    return d.GetU64(&shard) && d.GetU64(&global_start) && d.GetU64(&local_start) &&
           d.GetU64(&count);
  }
};

}  // namespace

// --- shard server -----------------------------------------------------------------------

ScalogShardServer::ScalogShardServer(Network* net, const SimParams& params, ShardId shard_id,
                                     bool primary)
    : endpoint_(net), cpu_(net->loop(), params.shard_cpu), disk_(net->loop(), params.disk),
      params_(params), shard_id_(shard_id), primary_(primary) {
  endpoint_.Register(kScalogAppend, [this](NodeId, Decoder d, Responder r) {
    HandleAppend(d, std::move(r));
  });
  endpoint_.Register(kScalogReplicate, [this](NodeId, Decoder d, Responder r) {
    HandleReplicate(d, std::move(r));
  });
  endpoint_.Register(kScalogCommitCut, [this](NodeId, Decoder d, Responder r) {
    HandleCommitCut(d, std::move(r));
  });
  endpoint_.Register(kScalogRead, [this](NodeId, Decoder d, Responder r) {
    HandleRead(d, std::move(r));
  });
}

void ScalogShardServer::Start(NodeId backup, NodeId ordering_leader, uint32_t server_index) {
  backup_ = backup;
  ordering_leader_ = ordering_leader;
  server_index_ = server_index;
  ReportLoop();
}

void ScalogShardServer::HandleAppend(Decoder d, Responder r) {
  Record rec;
  if (!DecodeRecord(d, &rec)) {
    r.Send(Status::InvalidArgument("bad append"));
    return;
  }
  // The gRPC handling penalty models the artifact's stack (§6.1 discussion); the shape
  // of Scalog's latency comes from the disk + batching + cut pipeline below.
  const uint64_t cost = params_.scalog.grpc_overhead_ns + cpu_.CostFor(rec.payload.size());
  cpu_.Execute(cost, [this, rec = std::move(rec), r]() mutable {
    const uint64_t bytes = rec.payload.size();
    const uint64_t local = log_.Append(rec);
    pending_.emplace_back(local, std::move(r));
    // "The primary logs and replicates the records in FIFO order to its backup"
    // (§2.2): the record counts toward the reported durable length once on disk, and
    // is forwarded to the backup after local logging — the serial local-ordering cost
    // Scalog pays eagerly.
    disk_.Write(bytes, [this, local, rec = std::move(rec)]() mutable {
      durable_len_++;
      if (backup_ != kInvalidNode) {
        Encoder e;
        e.PutU64(local);
        EncodeRecord(e, rec);
        std::vector<Buf> atts = e.TakeAtts();
        endpoint_.Call(backup_, kScalogReplicate, e.TakeBuf(), nullptr, 0, std::move(atts));
      }
    });
  });
}

void ScalogShardServer::HandleReplicate(Decoder d, Responder r) {
  uint64_t local = 0;
  Record rec;
  if (!d.GetU64(&local) || !DecodeRecord(d, &rec)) {
    r.Send(Status::InvalidArgument("bad replicate"));
    return;
  }
  // Fixed admission cost only; the payload is charged at the disk write below. Also
  // avoids reading `rec` in the same call that moves it into the capture.
  cpu_.ExecuteFor(0, [this, local, rec = std::move(rec), r]() mutable {
    // Jitter can reorder wire deliveries; restore FIFO by buffering and applying the
    // contiguous prefix.
    reorder_buf_.emplace(local, std::move(rec));
    for (auto it = reorder_buf_.find(log_.end_index()); it != reorder_buf_.end();
         it = reorder_buf_.find(log_.end_index())) {
      const uint64_t bytes = it->second.payload.size();
      log_.Append(std::move(it->second));
      reorder_buf_.erase(it);
      disk_.Write(bytes, [this]() { durable_len_++; });
    }
    r.Send(Status::Ok());
  });
}

void ScalogShardServer::ReportLoop() {
  if (ordering_leader_ != kInvalidNode) {
    Encoder e;
    e.PutU32(shard_id_);
    e.PutU32(server_index_);
    e.PutU64(durable_len_);
    endpoint_.Call(ordering_leader_, kScalogReportCut, e.Take(), nullptr, 0);
  }
  endpoint_.loop()->Schedule(params_.scalog.interleave_interval_ns, [this]() { ReportLoop(); });
}

void ScalogShardServer::HandleCommitCut(Decoder d, Responder r) {
  std::vector<CutRange> ranges;
  if (!d.GetVector(&ranges)) {
    r.Send(Status::InvalidArgument("bad cut"));
    return;
  }
  for (const CutRange& range : ranges) {
    if (range.shard != shard_id_ || range.count == 0) {
      continue;
    }
    ranges_.push_back({range.global_start, range.local_start, range.count});
    acked_len_ = std::max(acked_len_, range.local_start + range.count);
  }
  // Records covered by the cut are now globally ordered: acknowledge their appends.
  while (!pending_.empty() && pending_.front().first < acked_len_) {
    pending_.front().second.Send(Status::Ok());
    pending_.pop_front();
    acked_appends_++;
  }
  r.Send(Status::Ok());
}

void ScalogShardServer::HandleRead(Decoder d, Responder r) {
  uint64_t local = 0;
  uint64_t global = 0;
  if (!d.GetU64(&local) || !d.GetU64(&global)) {
    r.Send(Status::InvalidArgument("bad read"));
    return;
  }
  const Record* rec = log_.Get(local);
  if (rec == nullptr || local >= acked_len_) {
    r.Send(Status::OutOfRange("not ordered yet"));
    return;
  }
  cpu_.ExecuteFor(rec->payload.size(), [this, global, rec, r]() mutable {
    Encoder e;
    PositionedRecord pr{global, *rec};
    pr.Encode(e);
    r.Ok(e);
  });
}

// --- ordering layer ------------------------------------------------------------------------

ScalogOrderingLayer::ScalogOrderingLayer(Network* net, const SimParams& params,
                                         uint32_t num_shards)
    : endpoint_(net),
      cpu_(net->loop(), CpuParams{.fixed_ns = 1'000, .copy_bandwidth_bytes_per_sec = 5e9}),
      params_(params), num_shards_(num_shards) {
  reported_.assign(num_shards_, std::vector<uint64_t>(2, 0));
  committed_cut_.assign(num_shards_, 0);
  history_.resize(num_shards_);
  endpoint_.Register(kScalogReportCut, [this](NodeId, Decoder d, Responder r) {
    uint32_t shard = 0, server = 0;
    uint64_t len = 0;
    if (d.GetU32(&shard) && d.GetU32(&server) && d.GetU64(&len) && shard < num_shards_ &&
        server < 2) {
      reported_[shard][server] = std::max(reported_[shard][server], len);
    }
    r.Send(Status::Ok());
  });
  endpoint_.Register(kScalogLocate, [this](NodeId, Decoder d, Responder r) {
    uint64_t pos = 0;
    if (!d.GetU64(&pos)) {
      r.Send(Status::InvalidArgument("bad locate"));
      return;
    }
    ShardId shard = 0;
    uint64_t local = 0;
    if (!Locate(pos, &shard, &local)) {
      r.Send(Status::OutOfRange("not ordered"));
      return;
    }
    Encoder e;
    e.PutU32(shard);
    e.PutU64(local);
    r.Ok(e);
  });
  endpoint_.Register(kScalogTail, [this](NodeId, Decoder d, Responder r) {
    Encoder e;
    e.PutU64(total_);
    r.Ok(e);
  });
}

void ScalogOrderingLayer::Start(std::vector<NodeId> acceptors, std::vector<NodeId> servers) {
  proposer_ = std::make_unique<PaxosProposer>(&endpoint_, std::move(acceptors), /*ballot=*/1,
                                              params_.rpc_timeout_ns);
  servers_ = std::move(servers);
  CutLoop();
}

void ScalogOrderingLayer::CutLoop() {
  if (!cut_in_flight_) {
    // Global cut: the durable prefix of each shard is the min across its replicas.
    std::vector<uint64_t> cut(num_shards_);
    bool grew = false;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      cut[s] = std::min(reported_[s][0], reported_[s][1]);
      grew |= cut[s] > committed_cut_[s];
    }
    if (grew) {
      cut_in_flight_ = true;
      CommitCut(std::move(cut));
    }
  }
  endpoint_.loop()->Schedule(params_.scalog.interleave_interval_ns, [this]() { CutLoop(); });
}

void ScalogOrderingLayer::CommitCut(std::vector<uint64_t> cut) {
  Encoder value;
  value.PutU64Vector(cut);
  proposer_->Propose(next_slot_, value.Take(), [this, cut = std::move(cut)](Status s) {
    cut_in_flight_ = false;
    if (!s.ok()) {
      LLOG(kWarn) << "scalog: cut commit failed: " << s.ToString();
      return;
    }
    next_slot_++;
    cuts_committed_++;
    // Assign global positions: shards in index order within the cut (deterministic).
    std::vector<CutRange> ranges;
    for (uint32_t sh = 0; sh < num_shards_; ++sh) {
      const uint64_t delta = cut[sh] > committed_cut_[sh] ? cut[sh] - committed_cut_[sh] : 0;
      if (delta == 0) {
        continue;
      }
      ranges.push_back(CutRange{sh, total_, committed_cut_[sh], delta});
      history_[sh].push_back({total_, committed_cut_[sh], delta});
      total_ += delta;
      committed_cut_[sh] = cut[sh];
    }
    Encoder e;
    e.PutVector(ranges);
    const std::string body = e.Take();
    for (NodeId n : servers_) {
      endpoint_.Call(n, kScalogCommitCut, body, nullptr, 0);
    }
  });
}

bool ScalogOrderingLayer::Locate(LogPos pos, ShardId* shard, uint64_t* local) const {
  if (pos >= total_) {
    return false;
  }
  for (uint32_t sh = 0; sh < num_shards_; ++sh) {
    for (const auto& range : history_[sh]) {
      if (pos >= range[0] && pos < range[0] + range[2]) {
        *shard = sh;
        *local = range[1] + (pos - range[0]);
        return true;
      }
    }
  }
  return false;
}

// --- client ----------------------------------------------------------------------------------

ScalogClient::ScalogClient(Network* net, const SimParams& params, NodeId ordering_leader,
                           std::vector<NodeId> shard_primaries, ClientId client_id)
    : endpoint_(net), params_(params), ordering_leader_(ordering_leader),
      shard_primaries_(std::move(shard_primaries)), client_id_(client_id) {
  rr_cursor_ = client_id;
}

void ScalogClient::Append(const AppendOptions& options, Buf payload, AppendCallback cb) {
  Record rec;
  rec.id = RecordId{client_id_, next_request_id_++};
  rec.payload = std::move(payload);
  rec.tag = options.tag;
  rec.log = options.log;
  Encoder e;
  EncodeRecord(e, rec);
  std::vector<Buf> atts = e.TakeAtts();
  const NodeId target = shard_primaries_[rr_cursor_++ % shard_primaries_.size()];
  // Statuses pass through unmapped (kOverloaded included, if a shard ever sheds load):
  // the Scalog baseline models no admission control or client-side overload retry.
  endpoint_.Call(target, kScalogAppend, e.TakeBuf(),
                 [cb](Status s, Decoder) { cb(std::move(s)); }, params_.rpc_timeout_ns,
                 std::move(atts));
}

void ScalogClient::ReadOne(LogPos pos, std::function<void(Status, PositionedRecord)> cb) {
  read_stats_.primary_reads++;
  Encoder e;
  e.PutU64(pos);
  endpoint_.Call(ordering_leader_, kScalogLocate, e.Take(),
                 [this, pos, cb](Status s, Decoder d) {
                   if (!s.ok()) {
                     cb(std::move(s), {});
                     return;
                   }
                   uint32_t shard = 0;
                   uint64_t local = 0;
                   d.GetU32(&shard);
                   d.GetU64(&local);
                   Encoder re;
                   re.PutU64(local);
                   re.PutU64(pos);
                   endpoint_.Call(shard_primaries_[shard], kScalogRead, re.Take(),
                                  [cb](Status s2, Decoder rd) {
                                    PositionedRecord pr;
                                    if (s2.ok()) {
                                      if (!pr.Decode(rd)) {
                                        s2 = Status::Internal("bad read response");
                                      }
                                    }
                                    cb(std::move(s2), std::move(pr));
                                  },
                                  params_.rpc_timeout_ns);
                 },
                 params_.rpc_timeout_ns);
}

void ScalogClient::Read(LogPos from, uint64_t len, ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  struct State {
    std::vector<PositionedRecord> records;
  };
  auto state = std::make_shared<State>();
  auto gather = Gather::Create(len, [state, cb](const std::vector<Status>& ss) {
    for (const Status& s : ss) {
      if (!s.ok()) {
        cb(s, {});
        return;
      }
    }
    std::sort(state->records.begin(), state->records.end(),
              [](const PositionedRecord& a, const PositionedRecord& b) { return a.pos < b.pos; });
    cb(Status::Ok(), std::move(state->records));
  });
  for (uint64_t i = 0; i < len; ++i) {
    auto slot = gather->Slot(i);
    ReadOne(from + i, [state, slot](Status s, PositionedRecord pr) {
      if (s.ok()) {
        state->records.push_back(std::move(pr));
      }
      slot(std::move(s), Decoder());
    });
  }
}

void ScalogClient::CheckTail(TailCallback cb) {
  endpoint_.Call(ordering_leader_, kScalogTail, "",
                 [this, cb](Status s, Decoder d) {
                   if (!s.ok()) {
                     cb(std::move(s), 0, 0);
                     return;
                   }
                   uint64_t total = 0;
                   d.GetU64(&total);
                   tails_.Note(endpoint_.loop()->Now(), total, total);
                   cb(Status::Ok(), total, total);
                 },
                 params_.rpc_timeout_ns);
}

bool ScalogClient::CachedTail(LogPos* durable, LogPos* stable) {
  if (!tails_.Get(endpoint_.loop()->Now(), params_.client_read.tail_cache_ttl_ns, durable,
                  stable)) {
    return false;
  }
  read_stats_.tail_cache_hits++;
  return true;
}

void ScalogClient::Trim(LogPos index, TrimCallback cb) { cb(Status::Ok()); }

// --- cluster -----------------------------------------------------------------------------------

ScalogCluster::ScalogCluster(uint32_t num_shards, const SimParams& params) : params_(params) {
  net_ = std::make_unique<Network>(&loop_, params_.net, params_.seed);
  for (int i = 0; i < 3; ++i) {
    acceptors_.push_back(std::make_unique<PaxosAcceptor>(net_.get()));
  }
  ordering_ = std::make_unique<ScalogOrderingLayer>(net_.get(), params_, num_shards);
  std::vector<NodeId> servers;
  for (uint32_t s = 0; s < num_shards; ++s) {
    primaries_.push_back(std::make_unique<ScalogShardServer>(net_.get(), params_, s, true));
    backups_.push_back(std::make_unique<ScalogShardServer>(net_.get(), params_, s, false));
    servers.push_back(primaries_.back()->node_id());
    servers.push_back(backups_.back()->node_id());
  }
  std::vector<NodeId> acceptor_ids;
  for (const auto& a : acceptors_) {
    acceptor_ids.push_back(a->node_id());
  }
  ordering_->Start(acceptor_ids, servers);
  for (uint32_t s = 0; s < num_shards; ++s) {
    primaries_[s]->Start(backups_[s]->node_id(), ordering_->node_id(), 0);
    backups_[s]->Start(kInvalidNode, ordering_->node_id(), 1);
  }
}

std::unique_ptr<ScalogClient> ScalogCluster::MakeClient() {
  std::vector<NodeId> primaries;
  for (const auto& p : primaries_) {
    primaries.push_back(p->node_id());
  }
  return std::make_unique<ScalogClient>(net_.get(), params_, ordering_->node_id(),
                                        std::move(primaries), next_client_id_++);
}

}  // namespace lazylog
