#include "src/baselines/kafkalite/kafkalite.h"

#include <algorithm>

#include "src/common/logging.h"

namespace lazylog {

// --- broker --------------------------------------------------------------------------------

KafkaBroker::KafkaBroker(Network* net, const SimParams& params, uint32_t partition, bool leader)
    : endpoint_(net),
      cpu_(net->loop(), CpuParams{.fixed_ns = params.kafka.broker_fixed_ns,
                                  .copy_bandwidth_bytes_per_sec = 1.5e9}),
      disk_(net->loop(), params.disk),
      params_(params),
      partition_(partition),
      leader_(leader) {
  endpoint_.Register(kKafkaProduce, [this](NodeId, Decoder d, Responder r) {
    HandleProduce(d, std::move(r));
  });
  endpoint_.Register(kKafkaReplicate, [this](NodeId, Decoder d, Responder r) {
    HandleReplicate(d, std::move(r));
  });
  endpoint_.Register(kKafkaFetch, [this](NodeId, Decoder d, Responder r) {
    HandleFetch(d, std::move(r));
  });
  endpoint_.Register(kKafkaTruncate, [this](NodeId, Decoder d, Responder r) {
    HandleTruncate(d, std::move(r));
  });
  endpoint_.Register(kKafkaMeta, [this](NodeId, Decoder d, Responder r) {
    Encoder e;
    e.PutU64(log_.end_index());
    r.Ok(e);
  });
}

void KafkaBroker::HandleProduce(Decoder d, Responder r) {
  std::vector<WireRecord> batch;
  if (!d.GetVector(&batch)) {
    r.Send(Status::InvalidArgument("bad produce"));
    return;
  }
  uint64_t bytes = 0;
  for (const WireRecord& w : batch) {
    bytes += w.rec.payload.size();
  }
  cpu_.ExecuteFor(bytes, [this, batch = std::move(batch), bytes, r]() mutable {
    // Build the replication frame before the records are moved into the local log.
    // Payloads ride as attachments, so followers share the producer's backing.
    Buf replicate_body;
    std::vector<Buf> replicate_atts;
    if (!followers_.empty()) {
      Encoder e;
      e.PutU32(static_cast<uint32_t>(batch.size()));
      for (const WireRecord& w : batch) {
        EncodeRecord(e, w.rec);
      }
      replicate_atts = e.TakeAtts();
      replicate_body = e.TakeBuf();
    }
    for (WireRecord& w : batch) {
      log_.Append(std::move(w.rec));
    }
    // acks=all: respond only after every follower persisted and our own disk write
    // completed.
    struct AckState {
      int waits = 0;
      bool failed = false;
      Responder r;
      void Done(const Status& s) {
        if (!s.ok()) {
          failed = true;
        }
        if (--waits == 0) {
          r.Send(failed ? Status::Internal("replication failed") : Status::Ok());
        }
      }
    };
    auto ack = std::make_shared<AckState>();
    ack->r = std::move(r);
    ack->waits = static_cast<int>(followers_.size()) + 2;  // followers + own disk + guard
    for (NodeId f : followers_) {
      endpoint_.Call(f, kKafkaReplicate, replicate_body,
                     [ack](Status s, Decoder) { ack->Done(s); },
                     params_.rpc_timeout_ns, replicate_atts);
    }
    disk_.Write(bytes, [ack]() { ack->Done(Status::Ok()); });
    ack->Done(Status::Ok());  // guard release
  });
}

void KafkaBroker::HandleReplicate(Decoder d, Responder r) {
  uint32_t n = 0;
  if (!d.GetU32(&n)) {
    r.Send(Status::InvalidArgument("bad replicate"));
    return;
  }
  uint64_t bytes = 0;
  std::vector<Record> batch;
  batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Record rec;
    if (!DecodeRecord(d, &rec)) {
      r.Send(Status::InvalidArgument("bad replicate record"));
      return;
    }
    bytes += rec.payload.size();
    batch.push_back(std::move(rec));
  }
  cpu_.ExecuteFor(bytes, [this, batch = std::move(batch), bytes, r]() mutable {
    for (Record& rec : batch) {
      log_.Append(std::move(rec));
    }
    disk_.Write(bytes, [r]() mutable { r.Send(Status::Ok()); });
  });
}

void KafkaBroker::HandleFetch(Decoder d, Responder r) {
  uint64_t offset = 0;
  uint32_t max_records = 0;
  if (!d.GetU64(&offset) || !d.GetU32(&max_records)) {
    r.Send(Status::InvalidArgument("bad fetch"));
    return;
  }
  Encoder e;
  uint32_t count = 0;
  uint64_t bytes = 0;
  std::vector<WireRecord> out;
  for (uint64_t o = offset; o < log_.end_index() && count < max_records; ++o, ++count) {
    const Record* rec = log_.Get(o);
    if (rec == nullptr) {
      break;
    }
    out.push_back(WireRecord{*rec});
    bytes += rec->payload.size();
  }
  const uint64_t leo = log_.end_index();
  cpu_.ExecuteFor(bytes, [out = std::move(out), leo, r]() mutable {
    Encoder e2;
    e2.PutVector(out);
    // Trailing log-end-offset piggyback: lets pollers learn the tail without a
    // separate metadata round trip. Decoders that stop after the vector still parse.
    e2.PutU64(leo);
    r.Ok(e2);
  });
}

void KafkaBroker::HandleTruncate(Decoder d, Responder r) {
  uint64_t from = 0;
  if (!d.GetU64(&from)) {
    r.Send(Status::InvalidArgument("bad truncate"));
    return;
  }
  log_.TruncateFrom(from);
  if (leader_) {
    Encoder e;
    e.PutU64(from);
    const std::string body = e.Take();
    auto gather = Gather::Create(followers_.size(), [r](const std::vector<Status>&) mutable {
      r.Send(Status::Ok());
    });
    if (followers_.empty()) {
      r.Send(Status::Ok());
      return;
    }
    for (size_t i = 0; i < followers_.size(); ++i) {
      endpoint_.Call(followers_[i], kKafkaTruncate, body, gather->Slot(i),
                     params_.rpc_timeout_ns);
    }
    return;
  }
  r.Send(Status::Ok());
}

// --- producer -------------------------------------------------------------------------------

KafkaProducer::KafkaProducer(Network* net, const SimParams& params, NodeId leader,
                             ClientId client_id)
    : endpoint_(net), params_(params), leader_(leader), client_id_(client_id) {}

void KafkaProducer::Produce(Buf payload, ProduceCallback cb) {
  Produce(kNoTag, std::move(payload), std::move(cb));
}

void KafkaProducer::Produce(StreamTag tag, Buf payload, ProduceCallback cb) {
  // Broker statuses reach the callback unmapped (kOverloaded included, if the broker
  // ever sheds load); the linger buffer itself applies no admission control.
  buffered_bytes_ += payload.size();
  buffer_.push_back(
      Record{RecordId{client_id_, next_request_id_++}, std::move(payload), false, tag});
  callbacks_.push_back(std::move(cb));
  if (buffered_bytes_ >= 1 << 20) {
    FlushLocked();
    return;
  }
  if (!linger_timer_.Pending()) {
    linger_timer_ = endpoint_.loop()->Schedule(params_.kafka.linger_ns, [this]() {
      FlushLocked();
    });
  }
}

void KafkaProducer::Flush() { FlushLocked(); }

void KafkaProducer::FlushLocked() {
  linger_timer_.Cancel();
  if (buffer_.empty()) {
    return;
  }
  Encoder e;
  std::vector<WireRecord> wire;
  wire.reserve(buffer_.size());
  for (Record& rec : buffer_) {
    wire.push_back(WireRecord{std::move(rec)});
  }
  e.PutVector(wire);
  auto cbs = std::make_shared<std::vector<ProduceCallback>>(std::move(callbacks_));
  buffer_.clear();
  callbacks_.clear();
  buffered_bytes_ = 0;
  std::vector<Buf> atts = e.TakeAtts();
  endpoint_.Call(leader_, kKafkaProduce, e.TakeBuf(),
                 [cbs](Status s, Decoder) {
                   for (auto& cb : *cbs) {
                     if (cb) {
                       cb(s);
                     }
                   }
                 },
                 params_.rpc_timeout_ns, std::move(atts));
}

// --- consumer -------------------------------------------------------------------------------

KafkaConsumer::KafkaConsumer(Network* net, const SimParams& params, NodeId leader)
    : endpoint_(net), params_(params), leader_(leader) {}

void KafkaConsumer::Fetch(uint64_t offset, uint32_t max_records, FetchCallback cb) {
  Encoder e;
  e.PutU64(offset);
  e.PutU32(max_records);
  endpoint_.Call(leader_, kKafkaFetch, e.Take(),
                 [this, cb](Status s, Decoder d) {
                   std::vector<Record> records;
                   if (s.ok()) {
                     std::vector<WireRecord> wire;
                     if (d.GetVector(&wire)) {
                       for (WireRecord& w : wire) {
                         records.push_back(std::move(w.rec));
                       }
                       uint64_t leo = 0;
                       if (d.GetU64(&leo)) {
                         last_known_leo_ = std::max(last_known_leo_, leo);
                       }
                     } else {
                       s = Status::Internal("bad fetch response");
                     }
                   }
                   cb(std::move(s), std::move(records));
                 },
                 params_.rpc_timeout_ns);
}

// --- Erwin-m shard adapter --------------------------------------------------------------------

KafkaShardAdapter::KafkaShardAdapter(Network* net, const SimParams& params, ShardId shard_id,
                                     NodeId kafka_leader)
    : endpoint_(net),
      cpu_(net->loop(), CpuParams{.fixed_ns = 500, .copy_bandwidth_bytes_per_sec = 4e9}),
      params_(params), shard_id_(shard_id), kafka_leader_(kafka_leader) {
  endpoint_.Register(kShardAppendBatch, [this](NodeId, Decoder d, Responder r) {
    HandleAppendBatch(d, std::move(r));
  });
  endpoint_.Register(kShardRead, [this](NodeId, Decoder d, Responder r) {
    HandleRead(d, std::move(r));
  });
  endpoint_.Register(kShardMultiRangeRead, [this](NodeId, Decoder d, Responder r) {
    HandleMultiRangeRead(d, std::move(r));
  });
  endpoint_.Register(kShardSetStableGp, [this](NodeId, Decoder d, Responder r) {
    HandleSetStableGp(d, std::move(r));
  });
  endpoint_.Register(kShardTrim, [this](NodeId, Decoder d, Responder r) {
    HandleTrim(d, std::move(r));
  });
}

void KafkaShardAdapter::SendWatermarkAck(Responder& r, const Status& s) {
  ShardOrderAckResp resp{order_durable_};
  Encoder e;
  resp.Encode(e);
  r.Send(s, e.Take());
}

void KafkaShardAdapter::HandleAppendBatch(Decoder d, Responder r) {
  auto req = std::make_shared<ShardAppendBatchReq>();
  if (!req->Decode(d)) {
    r.Send(Status::InvalidArgument("bad append batch"));
    return;
  }
  if (req->view < view_) {
    SendWatermarkAck(r, Status::WrongView());
    return;
  }
  view_ = req->view;
  cpu_.Execute(cpu_.CostFor(0), [this, req, r]() mutable {
    if (req->overwrite) {
      // Recovery rewrite fences everything queued behind the old tail.
      for (auto& [lo, w] : pending_) {
        SendWatermarkAck(w.responder, Status::Unavailable("superseded by recovery flush"));
      }
      pending_.clear();
      ApplyWindow(PendingWindow{req, std::move(r)});
      return;
    }
    // Fully durable retransmit (a lost ack): re-ack so the cursor resynchronizes.
    if (req->range_hi != 0 && req->range_hi <= order_durable_) {
      SendWatermarkAck(r, Status::Ok());
      return;
    }
    auto [it, inserted] = pending_.try_emplace(req->range_lo);
    if (!inserted) {
      SendWatermarkAck(it->second.responder, Status::Unavailable("superseded by retransmit"));
    }
    it->second = PendingWindow{req, std::move(r)};
    if (pending_.size() > 64) {
      auto last = std::prev(pending_.end());
      SendWatermarkAck(last->second.responder, Status::Unavailable("window queue overflow"));
      pending_.erase(last);
    }
    DrainWindows();
  });
}

void KafkaShardAdapter::DrainWindows() {
  // Apply strictly in position order, one Kafka produce at a time: the durable
  // watermark then always covers a contiguous prefix. Windows ahead of the frontier
  // wait for the ordering cursor to fill (or re-send) the gap.
  while (!produce_inflight_ && !pending_.empty() &&
         pending_.begin()->first <= order_durable_) {
    PendingWindow w = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ApplyWindow(std::move(w));
  }
}

void KafkaShardAdapter::ApplyWindow(PendingWindow w) {
  auto req = w.req;
  auto r = std::move(w.responder);
  auto produce = [this, req, r]() mutable {
    // Drop duplicates from orderer retries, then produce the rest to Kafka.
    std::vector<WireRecord> wire;
    for (auto& pr : req->records) {
      if (pos_to_offset_.count(pr.pos) > 0) {
        continue;
      }
      const uint64_t offset = offset_base_ + offset_pos_.size();
      pos_to_offset_[pr.pos] = offset;
      offset_pos_.push_back(pr.pos);
      wire.push_back(WireRecord{std::move(pr.record)});
    }
    auto complete = [this, req, r](Status s) mutable {
      if (s.ok()) {
        order_durable_ = std::max(order_durable_, req->range_hi);
        if (req->overwrite) {
          order_durable_ = std::max<LogPos>(order_durable_, req->truncate_from);
        }
      }
      produce_inflight_ = false;
      SendWatermarkAck(r, s);
      DrainWindows();
    };
    if (wire.empty()) {
      complete(Status::Ok());
      return;
    }
    Encoder e;
    e.PutVector(wire);
    produce_inflight_ = true;
    std::vector<Buf> atts = e.TakeAtts();
    endpoint_.Call(kafka_leader_, kKafkaProduce, e.TakeBuf(),
                   [complete](Status s, Decoder) mutable {
                     complete(std::move(s));
                   },
                   params_.rpc_timeout_ns, std::move(atts));
  };
  if (req->overwrite) {
    // Recovery rewrite: "delete tail records and then append new entries" (§4.1).
    order_durable_ = std::min(order_durable_, req->truncate_from);
    uint64_t dropped = 0;
    while (!offset_pos_.empty() && offset_pos_.back() >= req->truncate_from) {
      pos_to_offset_.erase(offset_pos_.back());
      offset_pos_.pop_back();
      ++dropped;
    }
    if (dropped > 0) {
      Encoder e;
      e.PutU64(offset_base_ + offset_pos_.size());
      produce_inflight_ = true;
      endpoint_.Call(kafka_leader_, kKafkaTruncate, e.Take(),
                     [this, produce](Status, Decoder) mutable {
                       produce_inflight_ = false;
                       produce();
                     },
                     params_.rpc_timeout_ns);
      return;
    }
  }
  produce();
}

void KafkaShardAdapter::HandleRead(Decoder d, Responder r) {
  ShardReadReq req;
  if (!req.Decode(d)) {
    r.Send(Status::InvalidArgument("bad read"));
    return;
  }
  if (req.pos >= stable_gp_) {
    if (req.nowait) {
      r.Send(Status::OutOfRange("not stable"));
      return;
    }
    slow_reads_++;
    waiters_.push_back(Waiter{req, std::move(r)});
    return;
  }
  ServeRead(req, std::move(r));
}

void KafkaShardAdapter::ServeRead(const ShardReadReq& req, Responder r) {
  auto it = pos_to_offset_.find(req.pos);
  if (it == pos_to_offset_.end()) {
    r.Send(Status::Internal("stable position unknown to adapter"));
    return;
  }
  const uint64_t offset = it->second;
  Encoder e;
  e.PutU64(offset);
  e.PutU32(req.len);
  const LogPos stable = stable_gp_;
  endpoint_.Call(kafka_leader_, kKafkaFetch, e.Take(),
                 [this, offset, stable, r](Status s, Decoder d) mutable {
                   if (!s.ok()) {
                     r.Send(std::move(s));
                     return;
                   }
                   std::vector<WireRecord> wire;
                   if (!d.GetVector(&wire)) {
                     r.Send(Status::Internal("bad fetch"));
                     return;
                   }
                   ShardReadResp resp;
                   for (size_t i = 0; i < wire.size(); ++i) {
                     const uint64_t o = offset + i;
                     if (o - offset_base_ >= offset_pos_.size()) {
                       break;
                     }
                     const LogPos pos = offset_pos_[o - offset_base_];
                     if (pos >= stable) {
                       break;
                     }
                     resp.records.push_back(PositionedRecord{pos, std::move(wire[i].rec)});
                   }
                   resp.stable_gp = stable_gp_;
                   resp.durable_tail = std::max(durable_hint_, stable_gp_);
                   Encoder e2;
                   resp.Encode(e2);
                   r.Ok(e2);
                 },
                 params_.rpc_timeout_ns);
}

void KafkaShardAdapter::HandleMultiRangeRead(Decoder d, Responder r) {
  auto req = std::make_shared<ShardMultiRangeReadReq>();
  if (!req->Decode(d)) {
    r.Send(Status::InvalidArgument("bad multi-range read"));
    return;
  }
  ServeNextRange(std::move(req), 0, std::make_shared<ShardMultiRangeReadResp>(),
                 std::move(r));
}

void KafkaShardAdapter::ServeNextRange(std::shared_ptr<ShardMultiRangeReadReq> req, size_t i,
                                       std::shared_ptr<ShardMultiRangeReadResp> resp,
                                       Responder r) {
  // Skip unstable/unknown range starts (count 0); the client re-issues those via the
  // classic waiting read against this adapter.
  while (i < req->ranges.size() &&
         (req->ranges[i].pos >= stable_gp_ ||
          pos_to_offset_.find(req->ranges[i].pos) == pos_to_offset_.end())) {
    resp->counts.push_back(0);
    ++i;
  }
  if (i == req->ranges.size()) {
    resp->stable_gp = stable_gp_;
    resp->durable_tail = std::max(durable_hint_, stable_gp_);
    Encoder e;
    resp->Encode(e);
    r.Ok(e);
    return;
  }
  const ReadRange range = req->ranges[i];
  const uint64_t offset = pos_to_offset_[range.pos];
  Encoder e;
  e.PutU64(offset);
  e.PutU32(range.len);
  const LogPos stable = stable_gp_;
  endpoint_.Call(kafka_leader_, kKafkaFetch, e.Take(),
                 [this, req = std::move(req), i, resp, offset, stable, r](Status s,
                                                                          Decoder d) mutable {
                   uint32_t served = 0;
                   std::vector<WireRecord> wire;
                   if (s.ok() && d.GetVector(&wire)) {
                     for (size_t k = 0; k < wire.size(); ++k) {
                       const uint64_t o = offset + k;
                       if (o - offset_base_ >= offset_pos_.size()) {
                         break;
                       }
                       const LogPos pos = offset_pos_[o - offset_base_];
                       if (pos >= stable) {
                         break;
                       }
                       resp->records.push_back(PositionedRecord{pos, std::move(wire[k].rec)});
                       ++served;
                     }
                   }
                   resp->counts.push_back(served);
                   ServeNextRange(std::move(req), i + 1, std::move(resp), std::move(r));
                 },
                 params_.rpc_timeout_ns);
}

void KafkaShardAdapter::HandleSetStableGp(Decoder d, Responder r) {
  StableGpMsg msg;
  if (!msg.Decode(d)) {
    r.Send(Status::InvalidArgument("bad stable-gp"));
    return;
  }
  if (msg.view >= view_) {
    view_ = msg.view;
    stable_gp_ = std::max(stable_gp_, msg.stable_gp);
    durable_hint_ = std::max(durable_hint_, msg.durable_tail);
    WakeWaiters();
  }
  r.Send(Status::Ok());
}

void KafkaShardAdapter::WakeWaiters() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (Waiter& w : waiters) {
    if (w.req.pos < stable_gp_) {
      ServeRead(w.req, std::move(w.responder));
    } else {
      waiters_.push_back(std::move(w));
    }
  }
}

void KafkaShardAdapter::HandleTrim(Decoder d, Responder r) {
  // Kafka prefix deletion is retention-based; the adapter only forgets its mapping.
  TrimMsg msg;
  if (!msg.Decode(d)) {
    r.Send(Status::InvalidArgument("bad trim"));
    return;
  }
  while (!offset_pos_.empty() && offset_pos_.front() < msg.up_to) {
    pos_to_offset_.erase(offset_pos_.front());
    offset_pos_.pop_front();
    ++offset_base_;
  }
  r.Send(Status::Ok());
}

// --- standalone cluster -----------------------------------------------------------------------

KafkaCluster::KafkaCluster(uint32_t partitions, uint32_t replication, const SimParams& params)
    : params_(params) {
  net_ = std::make_unique<Network>(&loop_, params_.net, params_.seed);
  for (uint32_t p = 0; p < partitions; ++p) {
    std::vector<std::unique_ptr<KafkaBroker>> replicas;
    for (uint32_t r = 0; r < replication; ++r) {
      replicas.push_back(std::make_unique<KafkaBroker>(net_.get(), params_, p, r == 0));
    }
    std::vector<NodeId> followers;
    for (uint32_t r = 1; r < replication; ++r) {
      followers.push_back(replicas[r]->node_id());
    }
    replicas[0]->SetFollowers(std::move(followers));
    brokers_.push_back(std::move(replicas));
  }
}

std::unique_ptr<KafkaProducer> KafkaCluster::MakeProducer(uint32_t partition) {
  return std::make_unique<KafkaProducer>(net_.get(), params_, leader(partition),
                                         next_client_id_++);
}

std::unique_ptr<KafkaConsumer> KafkaCluster::MakeConsumer(uint32_t partition) {
  return std::make_unique<KafkaConsumer>(net_.get(), params_, leader(partition));
}

}  // namespace lazylog
