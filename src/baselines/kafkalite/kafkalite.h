// KafkaLite: a Kafka-style per-shard-ordering shared log (§2.1-2.2). A partition has a
// leader and followers; producers batch client-side (linger) and the leader acknowledges
// only after all replicas persist (acks=all). Standalone it exhibits Kafka's ms-scale
// append latencies (Fig 15); through KafkaShardAdapter it serves as an unmodified
// black-box shard under Erwin-m, which then delivers total order across Kafka shards at
// sequencing-layer latencies (§6.8).
#ifndef SRC_BASELINES_KAFKALITE_KAFKALITE_H_
#define SRC_BASELINES_KAFKALITE_KAFKALITE_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/params.h"
#include "src/rpc/rpc.h"
#include "src/rpc/rpc_methods.h"
#include "src/sim/resources.h"
#include "src/storage/segmented_log.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

// One replica of a Kafka partition.
class KafkaBroker {
 public:
  KafkaBroker(Network* net, const SimParams& params, uint32_t partition, bool leader);

  NodeId node_id() const { return endpoint_.node_id(); }
  void SetFollowers(std::vector<NodeId> followers) { followers_ = std::move(followers); }

  uint64_t log_end_offset() const { return log_.end_index(); }
  const Record* At(uint64_t offset) const { return log_.Get(offset); }

 private:
  void HandleProduce(Decoder d, Responder r);
  void HandleReplicate(Decoder d, Responder r);
  void HandleFetch(Decoder d, Responder r);
  void HandleTruncate(Decoder d, Responder r);

  RpcEndpoint endpoint_;
  ServerCpu cpu_;
  Disk disk_;
  SimParams params_;
  uint32_t partition_;
  bool leader_;
  std::vector<NodeId> followers_;
  SegmentedLog log_;
};

// Client-side producer with linger-based batching (Kafka's latency story).
class KafkaProducer {
 public:
  KafkaProducer(Network* net, const SimParams& params, NodeId leader, ClientId client_id);

  // Mirrors SharedLogClient::AppendCallback: OK once the batch is replicated.
  using ProduceCallback = std::function<void(Status)>;
  // Buffers the record; the batch is flushed after `linger` or at 1 MB.
  void Produce(Buf payload, ProduceCallback cb);
  // Tagged variant: the tag is stored with the record and returned by Fetch.
  void Produce(StreamTag tag, Buf payload, ProduceCallback cb);
  // Forces an immediate flush (tests).
  void Flush();

 private:
  void FlushLocked();

  RpcEndpoint endpoint_;
  SimParams params_;
  NodeId leader_;
  ClientId client_id_;
  RequestId next_request_id_ = 1;
  std::vector<Record> buffer_;
  std::vector<ProduceCallback> callbacks_;
  uint64_t buffered_bytes_ = 0;
  EventHandle linger_timer_;
};

// Simple pull consumer.
class KafkaConsumer {
 public:
  KafkaConsumer(Network* net, const SimParams& params, NodeId leader);

  using FetchCallback = std::function<void(Status, std::vector<Record>)>;
  void Fetch(uint64_t offset, uint32_t max_records, FetchCallback cb);

  // Log-end-offset piggybacked on the last fetch reply; a poller can skip a metadata
  // round trip by fetching from its cursor and reading this instead.
  uint64_t last_known_leo() const { return last_known_leo_; }

 private:
  RpcEndpoint endpoint_;
  SimParams params_;
  NodeId leader_;
  uint64_t last_known_leo_ = 0;
};

// Black-box shard adapter: speaks the Erwin-m shard protocol (ordered append batches,
// stable-gp-gated reads, trim, recovery tail-overwrite) and drives a Kafka partition
// through its public produce/fetch/truncate API — the bolt-on of §4.1/§6.8. Tail
// overwrites are "delete tail records, then append" exactly as the paper prescribes
// for Kafka shards.
class KafkaShardAdapter {
 public:
  KafkaShardAdapter(Network* net, const SimParams& params, ShardId shard_id,
                    NodeId kafka_leader);

  NodeId node_id() const { return endpoint_.node_id(); }
  LogPos stable_gp() const { return stable_gp_; }
  uint64_t slow_reads() const { return slow_reads_; }

 private:
  struct Waiter {
    ShardReadReq req;
    Responder responder;
  };
  // An ordering window awaiting its turn; the adapter applies windows strictly in
  // position order (one Kafka produce at a time), so the durable watermark it acks is
  // always a contiguous prefix.
  struct PendingWindow {
    std::shared_ptr<ShardAppendBatchReq> req;
    Responder responder;
  };

  void HandleAppendBatch(Decoder d, Responder r);
  void HandleRead(Decoder d, Responder r);
  void HandleMultiRangeRead(Decoder d, Responder r);
  void HandleSetStableGp(Decoder d, Responder r);
  void HandleTrim(Decoder d, Responder r);
  void ServeRead(const ShardReadReq& req, Responder r);
  // Serves ranges[i..] of a multi-range read one Kafka fetch at a time, accumulating
  // into `resp`; unstable/unknown ranges are skipped (the client re-issues them).
  void ServeNextRange(std::shared_ptr<ShardMultiRangeReadReq> req, size_t i,
                      std::shared_ptr<ShardMultiRangeReadResp> resp, Responder r);
  void WakeWaiters();
  // Sends `s` plus a ShardOrderAckResp carrying the durable watermark — on every
  // outcome, so a retrying ordering cursor can resynchronize from any reply.
  void SendWatermarkAck(Responder& r, const Status& s);
  void DrainWindows();
  void ApplyWindow(PendingWindow w);

  RpcEndpoint endpoint_;
  ServerCpu cpu_;
  SimParams params_;
  ShardId shard_id_;
  NodeId kafka_leader_;
  ViewId view_ = 0;
  LogPos stable_gp_ = 0;
  LogPos durable_hint_ = 0;  // last durable tail heard from stable-gp broadcasts
  std::deque<LogPos> offset_pos_;  // kafka offset -> global pos (dense from offset_base_)
  uint64_t offset_base_ = 0;
  std::unordered_map<LogPos, uint64_t> pos_to_offset_;
  std::vector<Waiter> waiters_;
  uint64_t slow_reads_ = 0;
  // Ordered-window frontier: positions < order_durable_ are produced to Kafka. Windows
  // arriving ahead of the frontier (pipelined cursors + network reordering) park in
  // pending_ keyed by range_lo until their predecessor lands.
  LogPos order_durable_ = 0;
  bool produce_inflight_ = false;
  std::map<LogPos, PendingWindow> pending_;
};

// Standalone KafkaLite deployment: `partitions` partitions, each leader + `replication-1`
// followers.
class KafkaCluster {
 public:
  KafkaCluster(uint32_t partitions, uint32_t replication, const SimParams& params);

  EventLoop& loop() { return loop_; }
  Network& network() { return *net_; }
  NodeId leader(uint32_t partition) const { return brokers_[partition][0]->node_id(); }
  KafkaBroker& broker(uint32_t partition, uint32_t r) { return *brokers_[partition][r]; }
  std::unique_ptr<KafkaProducer> MakeProducer(uint32_t partition);
  std::unique_ptr<KafkaConsumer> MakeConsumer(uint32_t partition);
  void RunFor(uint64_t ns) { loop_.RunUntil(loop_.Now() + ns); }

 private:
  SimParams params_;
  EventLoop loop_;
  std::unique_ptr<Network> net_;
  std::vector<std::vector<std::unique_ptr<KafkaBroker>>> brokers_;
  ClientId next_client_id_ = 1;
};

}  // namespace lazylog

#endif  // SRC_BASELINES_KAFKALITE_KAFKALITE_H_
