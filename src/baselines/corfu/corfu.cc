#include "src/baselines/corfu/corfu.h"

#include "src/common/logging.h"

namespace lazylog {

// --- sequencer -----------------------------------------------------------------------

CorfuSequencer::CorfuSequencer(Network* net, const SimParams& params)
    : endpoint_(net),
      cpu_(net->loop(), CpuParams{.fixed_ns = 300, .copy_bandwidth_bytes_per_sec = 10e9}) {
  endpoint_.Register(kCorfuNextPos, [this](NodeId, Decoder d, Responder r) {
    cpu_.Execute(cpu_.CostFor(0), [this, r]() mutable {
      Encoder e;
      e.PutU64(next_pos_++);
      r.Ok(e);
    });
  });
  endpoint_.Register(kCorfuTail, [this](NodeId, Decoder d, Responder r) {
    uint64_t completed = 0;
    const bool report = d.GetU64(&completed);
    cpu_.Execute(cpu_.CostFor(0), [this, r, report, completed]() mutable {
      if (report && completed > committed_) {
        committed_ = completed;
      }
      Encoder e;
      e.PutU64(next_pos_);
      e.PutU64(committed_);
      r.Ok(e);
    });
  });
}

// --- storage unit ----------------------------------------------------------------------

CorfuStorageUnit::CorfuStorageUnit(Network* net, const SimParams& params, ShardId shard_id)
    : endpoint_(net), cpu_(net->loop(), params.shard_cpu), disk_(net->loop(), params.disk) {
  endpoint_.Register(kCorfuWrite, [this](NodeId, Decoder d, Responder r) {
    HandleWrite(d, std::move(r));
  });
  endpoint_.Register(kCorfuRead, [this](NodeId, Decoder d, Responder r) {
    HandleRead(d, std::move(r));
  });
}

void CorfuStorageUnit::HandleWrite(Decoder d, Responder r) {
  uint64_t pos = 0;
  Record rec;
  if (!d.GetU64(&pos) || !DecodeRecord(d, &rec)) {
    r.Send(Status::InvalidArgument("bad corfu write"));
    return;
  }
  // Admission charges the fixed per-request CPU cost only; the payload's transfer cost
  // is charged once, at the disk write below (the unit acks from memory/NVRAM). Keeping
  // the byte count out of the ExecuteFor argument also avoids reading `rec` in the same
  // call that moves it into the capture (unspecified evaluation order).
  cpu_.ExecuteFor(0, [this, pos, rec = std::move(rec), r]() mutable {
    auto it = store_.find(pos);
    if (it != store_.end()) {
      // Write-once: a duplicate identical write (client retry) is fine; a conflicting
      // one is an error.
      r.Send(it->second.id == rec.id ? Status::Ok() : Status::Rejected("position taken"));
      return;
    }
    const uint64_t bytes = rec.payload.size();
    store_.emplace(pos, std::move(rec));
    // Flash write happens off the ack path (Corfu acks from the unit's memory/NVRAM);
    // the disk still applies backpressure at saturation.
    disk_.Write(bytes);
    const uint64_t depth = disk_.QueueDepthNs();
    const uint64_t delay = depth > 2 * kMs ? depth - 2 * kMs : 0;
    auto finish = [this, pos, r]() mutable {
      r.Send(Status::Ok());
      // Wake any read waiting for this position.
      std::vector<ReadWaiter> rest;
      for (auto& w : waiters_) {
        if (w.pos == pos) {
          Encoder e;
          EncodeRecord(e, store_[pos]);
          w.responder.Ok(e);
        } else {
          rest.push_back(std::move(w));
        }
      }
      waiters_ = std::move(rest);
    };
    if (delay == 0) {
      finish();
    } else {
      endpoint_.loop()->Schedule(delay, std::move(finish));
    }
  });
}

void CorfuStorageUnit::HandleRead(Decoder d, Responder r) {
  uint64_t pos = 0;
  bool nowait = false;
  if (!d.GetU64(&pos) || !d.GetBool(&nowait)) {
    r.Send(Status::InvalidArgument("bad corfu read"));
    return;
  }
  auto it = store_.find(pos);
  if (it == store_.end()) {
    if (nowait) {
      r.Send(Status::OutOfRange("position unwritten"));
    } else {
      waiters_.push_back(ReadWaiter{pos, std::move(r)});
    }
    return;
  }
  cpu_.ExecuteFor(it->second.payload.size(), [this, pos, r]() mutable {
    Encoder e;
    EncodeRecord(e, store_[pos]);
    r.Ok(e);
  });
}

// --- client ----------------------------------------------------------------------------

CorfuClient::CorfuClient(Network* net, const SimParams& params, NodeId sequencer,
                         std::vector<std::vector<NodeId>> chains, ClientId client_id)
    : endpoint_(net), params_(params), sequencer_(sequencer), chains_(std::move(chains)),
      client_id_(client_id) {}

void CorfuClient::Append(const AppendOptions& options, Buf payload, AppendCallback cb) {
  // Any non-OK status (including kOverloaded, should the sequencer ever gain admission
  // control) passes through unmapped: Corfu has no client-side shed/retry tier.
  AppendAt(options, std::move(payload), [cb](Status s, LogPos) { cb(std::move(s)); });
}

void CorfuClient::AppendAt(Buf payload, AppendPosCallback cb) {
  AppendAt(AppendOptions{}, std::move(payload), std::move(cb));
}

void CorfuClient::AppendAt(const AppendOptions& options, Buf payload, AppendPosCallback cb) {
  // RTT 1: obtain a position from the sequencer (not yet binding, §2.2).
  auto record = std::make_shared<Record>();
  record->id = RecordId{client_id_, next_request_id_++};
  record->payload = std::move(payload);
  record->tag = options.tag;
  record->log = options.log;
  endpoint_.Call(sequencer_, kCorfuNextPos, "",
                 [this, record, cb](Status s, Decoder d) {
                   if (!s.ok()) {
                     cb(std::move(s), kInvalidLogPos);
                     return;
                   }
                   uint64_t pos = 0;
                   d.GetU64(&pos);
                   // RTTs 2..1+k: client-driven chain write binds the record.
                   ChainWrite(pos, record, 0, std::move(cb));
                 },
                 params_.rpc_timeout_ns);
}

void CorfuClient::ChainWrite(LogPos pos, std::shared_ptr<Record> record, size_t hop,
                             AppendPosCallback cb) {
  const auto& chain = chains_[pos % chains_.size()];
  if (hop == chain.size()) {
    // Written at the chain tail: durable and bound. Report the completed write so the
    // sequencer's committed tail advances.
    Encoder e;
    e.PutU64(pos + 1);
    endpoint_.Call(sequencer_, kCorfuTail, e.Take(), nullptr, 0);
    cb(Status::Ok(), pos);
    return;
  }
  Encoder e;
  e.PutU64(pos);
  EncodeRecord(e, *record);
  std::vector<Buf> atts = e.TakeAtts();
  endpoint_.Call(chain[hop], kCorfuWrite, e.TakeBuf(),
                 [this, pos, record, hop, cb](Status s, Decoder) {
                   if (!s.ok()) {
                     cb(std::move(s), kInvalidLogPos);
                     return;
                   }
                   ChainWrite(pos, record, hop + 1, cb);
                 },
                 params_.rpc_timeout_ns, std::move(atts));
}

void CorfuClient::ReadOne(LogPos pos, std::function<void(Status, PositionedRecord)> cb) {
  // Committed data is read from the chain tail.
  read_stats_.primary_reads++;
  const auto& chain = chains_[pos % chains_.size()];
  Encoder e;
  e.PutU64(pos);
  e.PutBool(false);
  endpoint_.Call(chain.back(), kCorfuRead, e.Take(),
                 [pos, cb](Status s, Decoder d) {
                   PositionedRecord pr;
                   pr.pos = pos;
                   if (s.ok()) {
                     if (!DecodeRecord(d, &pr.record)) {
                       s = Status::Internal("bad corfu read response");
                     }
                   }
                   cb(std::move(s), std::move(pr));
                 },
                 0);
}

void CorfuClient::Read(LogPos from, uint64_t len, ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  struct State {
    std::vector<PositionedRecord> records;
    Status failure = Status::Ok();
  };
  auto state = std::make_shared<State>();
  auto gather = Gather::Create(len, [state, cb](const std::vector<Status>& ss) {
    for (const Status& s : ss) {
      if (!s.ok()) {
        cb(s, {});
        return;
      }
    }
    std::sort(state->records.begin(), state->records.end(),
              [](const PositionedRecord& a, const PositionedRecord& b) { return a.pos < b.pos; });
    cb(Status::Ok(), std::move(state->records));
  });
  for (uint64_t i = 0; i < len; ++i) {
    auto slot = gather->Slot(i);
    ReadOne(from + i, [state, slot](Status s, PositionedRecord pr) {
      if (s.ok()) {
        state->records.push_back(std::move(pr));
      }
      slot(std::move(s), Decoder());
    });
  }
}

void CorfuClient::CheckTail(TailCallback cb) {
  endpoint_.Call(sequencer_, kCorfuTail, "",
                 [this, cb](Status s, Decoder d) {
                   if (!s.ok()) {
                     cb(std::move(s), 0, 0);
                     return;
                   }
                   uint64_t next = 0, committed = 0;
                   d.GetU64(&next);
                   d.GetU64(&committed);
                   // Corfu binds eagerly: every committed record is stable.
                   tails_.Note(endpoint_.loop()->Now(), committed, committed);
                   cb(Status::Ok(), committed, committed);
                 },
                 params_.rpc_timeout_ns);
}

bool CorfuClient::CachedTail(LogPos* durable, LogPos* stable) {
  if (!tails_.Get(endpoint_.loop()->Now(), params_.client_read.tail_cache_ttl_ns, durable,
                  stable)) {
    return false;
  }
  read_stats_.tail_cache_hits++;
  return true;
}

void CorfuClient::Trim(LogPos index, TrimCallback cb) {
  // Storage units keep a hash map; trim is metadata-only in this baseline.
  cb(Status::Ok());
}

// --- cluster ------------------------------------------------------------------------------

CorfuCluster::CorfuCluster(uint32_t num_shards, uint32_t chain_length, const SimParams& params)
    : params_(params) {
  net_ = std::make_unique<Network>(&loop_, params_.net, params_.seed);
  sequencer_ = std::make_unique<CorfuSequencer>(net_.get(), params_);
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::vector<std::unique_ptr<CorfuStorageUnit>> chain;
    for (uint32_t r = 0; r < chain_length; ++r) {
      chain.push_back(std::make_unique<CorfuStorageUnit>(net_.get(), params_, s));
    }
    chains_.push_back(std::move(chain));
  }
}

std::unique_ptr<CorfuClient> CorfuCluster::MakeClient() {
  std::vector<std::vector<NodeId>> chains;
  for (const auto& chain : chains_) {
    std::vector<NodeId> ids;
    for (const auto& unit : chain) {
      ids.push_back(unit->node_id());
    }
    chains.push_back(std::move(ids));
  }
  return std::make_unique<CorfuClient>(net_.get(), params_, sequencer_->node_id(),
                                       std::move(chains), next_client_id_++);
}

}  // namespace lazylog
