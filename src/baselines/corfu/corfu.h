// From-scratch Corfu baseline (§2.2, Figure 1b): a sequencer hands out positions
// (an optimization, not a binding); the client then binds the record by writing it
// through the storage unit chain of shard (pos mod n), client-driven and serial. With
// three replicas an append costs 4 RTTs — the eager-ordering latency Erwin avoids.
#ifndef SRC_BASELINES_CORFU_CORFU_H_
#define SRC_BASELINES_CORFU_CORFU_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/params.h"
#include "src/lazylog/cluster_view.h"
#include "src/lazylog/read_path.h"
#include "src/lazylog/shared_log_client.h"
#include "src/rpc/rpc.h"
#include "src/rpc/rpc_methods.h"
#include "src/sim/resources.h"
#include "src/storage/segmented_log.h"

namespace lazylog {

// Hands out monotonically increasing log positions; also tracks the committed tail
// (clients report completed chain writes so checkTail can answer).
class CorfuSequencer {
 public:
  explicit CorfuSequencer(Network* net, const SimParams& params);

  NodeId node_id() const { return endpoint_.node_id(); }
  LogPos next_pos() const { return next_pos_; }

 private:
  RpcEndpoint endpoint_;
  ServerCpu cpu_;
  LogPos next_pos_ = 0;
  LogPos committed_ = 0;  // max contiguous... tracked as count of completed writes
};

// One storage unit (chain member) of a Corfu shard. Stores position -> record; a
// position is immutable once written (write-once semantics).
class CorfuStorageUnit {
 public:
  CorfuStorageUnit(Network* net, const SimParams& params, ShardId shard_id);

  NodeId node_id() const { return endpoint_.node_id(); }
  uint64_t stored() const { return static_cast<uint64_t>(store_.size()); }

 private:
  void HandleWrite(Decoder d, Responder r);
  void HandleRead(Decoder d, Responder r);

  RpcEndpoint endpoint_;
  ServerCpu cpu_;
  Disk disk_;
  std::unordered_map<LogPos, Record> store_;
  struct ReadWaiter {
    LogPos pos;
    Responder responder;
  };
  std::vector<ReadWaiter> waiters_;
};

// Corfu client: eager-ordering SharedLogClient.
class CorfuClient : public SharedLogClient {
 public:
  // `chains[s]` is the storage-unit chain (head..tail) of shard s.
  CorfuClient(Network* net, const SimParams& params, NodeId sequencer,
              std::vector<std::vector<NodeId>> chains, ClientId client_id);

  // Appends and reports the eagerly bound position (Corfu's native interface).
  using AppendPosCallback = std::function<void(Status, LogPos)>;
  void AppendAt(Buf payload, AppendPosCallback cb);
  void AppendAt(StreamTag tag, Buf payload, AppendPosCallback cb) {
    AppendAt(AppendOptions{.tag = tag}, std::move(payload), std::move(cb));
  }
  void AppendAt(const AppendOptions& options, Buf payload, AppendPosCallback cb);

  // Most recent committed tail heard from CheckTail; fresher than
  // client_read.tail_cache_ttl_ns only (Corfu binds eagerly, so durable == stable).
  bool CachedTail(LogPos* durable, LogPos* stable) override;

 protected:
  // --- SharedLogClient (reached through LogHandle). Tag and phylog id ride inside the
  // record, so the base-class scan fallbacks (Corfu has no index tier) can project
  // streams and per-log rank spaces.
  void Append(const AppendOptions& options, Buf payload, AppendCallback cb) override;
  void Read(LogPos from, uint64_t len, ReadCallback cb) override;
  void CheckTail(TailCallback cb) override;
  void Trim(LogPos index, TrimCallback cb) override;

 private:
  void ChainWrite(LogPos pos, std::shared_ptr<Record> record, size_t hop,
                  AppendPosCallback cb);
  void ReadOne(LogPos pos, std::function<void(Status, PositionedRecord)> cb);

  RpcEndpoint endpoint_;
  SimParams params_;
  NodeId sequencer_;
  std::vector<std::vector<NodeId>> chains_;
  ClientId client_id_;
  RequestId next_request_id_ = 1;
  TailCache tails_;
};

// Whole-cluster assembly for tests/benches.
class CorfuCluster {
 public:
  CorfuCluster(uint32_t num_shards, uint32_t chain_length, const SimParams& params);

  EventLoop& loop() { return loop_; }
  Network& network() { return *net_; }
  std::unique_ptr<CorfuClient> MakeClient();
  void RunFor(uint64_t ns) { loop_.RunUntil(loop_.Now() + ns); }

 private:
  SimParams params_;
  EventLoop loop_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<CorfuSequencer> sequencer_;
  std::vector<std::vector<std::unique_ptr<CorfuStorageUnit>>> chains_;
  ClientId next_client_id_ = 1;
};

}  // namespace lazylog

#endif  // SRC_BASELINES_CORFU_CORFU_H_
