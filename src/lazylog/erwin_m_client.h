// Erwin-m client library (§4). Appends write the record to every sequencing replica in
// parallel and complete when all acknowledge — 1 RTT, no coordination. Reads go to the
// shard owning the position (p mod n); the shard gates them on stable-gp. On sealed /
// stale-view errors the client re-resolves the configuration and retries with the same
// record id (replicas filter duplicates).
#ifndef SRC_LAZYLOG_ERWIN_M_CLIENT_H_
#define SRC_LAZYLOG_ERWIN_M_CLIENT_H_

#include <deque>
#include <map>
#include <memory>

#include "src/common/params.h"
#include "src/common/random.h"
#include "src/lazylog/cluster_view.h"
#include "src/lazylog/read_path.h"
#include "src/lazylog/shared_log_client.h"
#include "src/rpc/rpc.h"
#include "src/rpc/rpc_methods.h"
#include "src/seq/seq_messages.h"

namespace lazylog {

class ErwinMClient : public SharedLogClient {
 public:
  ErwinMClient(Network* net, const SimParams& params, ClusterView view, ClientId client_id);

  NodeId node_id() const { return endpoint_.node_id(); }

  // appendSync extension (§5.5): completes only after the record is bound to its final
  // position (eager ordering at the cost of latency).
  void AppendSync(Buf payload, AppendCallback cb);

  // Number of view changes this client has observed (tests).
  uint64_t view_changes() const { return view_changes_; }
  ViewId view() const { return view_.view; }
  // View that served the most recent successful CheckTail (the durable count may
  // legitimately shrink across views when an uncommitted suffix is dropped; oracles
  // scope durable-monotonicity per view using this).
  ViewId last_tail_view() const { return last_tail_view_; }
  uint64_t shard_epoch() const { return view_.shard_epoch; }
  // Most recent durable/stable tail heard from CheckTail replies and read-reply
  // piggybacks; true only while fresher than client_read.tail_cache_ttl_ns.
  bool CachedTail(LogPos* durable, LogPos* stable) override;
  // Observer over every routed/classic read reply (serving replica, advertised stable,
  // records); the chaos read-staleness oracle subscribes.
  void SetReadReplyObserver(ReadCoalescer::ReplyObserver obs) {
    coalescer_.SetReplyObserver(std::move(obs));
  }
  ClientId client_id() const { return client_id_; }
  // RPC outcome counters (chaos reports: how much of a run hit timeouts/retries).
  const RpcStats& rpc_stats() const { return endpoint_.stats(); }

 protected:
  // --- SharedLogClient (reached through LogHandle) ---
  void Append(const AppendOptions& options, Buf payload, AppendCallback cb) override;
  void Read(LogPos from, uint64_t len, ReadCallback cb) override;
  void CheckTail(TailCallback cb) override;
  void Trim(LogPos index, TrimCallback cb) override;
  // Selective read via the index tier (falls back to the base-class scan when the
  // view has no index nodes or the index path fails mid-flight).
  void ReadNext(LogId log, StreamTag tag, LogPos from, uint32_t max,
                ReadNextCallback cb) override;
  // Named-log ranged read via the index tier's rank lists (scan fallback as above).
  void ReadLog(LogId log, LogPos from, uint64_t len, ReadCallback cb) override;
  // Per-phylog tail from the leader's log cursors (SeqCheckTailReq body).
  void CheckTailOfLog(LogId log, TailCallback cb) override;
  // Name resolution against "/logs/config" in ZooKeeper.
  void ResolveLog(const std::string& name,
                  std::function<void(Status, LogId)> cb) override;

 private:
  struct PendingAppend {
    RecordId id;
    Buf payload;
    StreamTag tag = kNoTag;
    LogId log = kDefaultLog;
    AppendCallback cb;
    int attempts = 0;
    int overload_attempts = 0;
    // Most recent failure seen for this append; reported if the retry budget runs out.
    Status last_error = Status::Timeout("append retries exhausted");
  };

  void SendAppend(std::shared_ptr<PendingAppend> p);
  void EnqueueRetry(std::shared_ptr<PendingAppend> p);
  // kOverloaded resend: in-place jittered backoff, no config probe (overload is not a
  // view problem). The shed budget applies only when the leader itself refused;
  // leader-admitted appends persist until the follower gates let them through.
  void EnqueueOverloadRetry(std::shared_ptr<PendingAppend> p, bool leader_admitted);
  // kQuotaExceeded resend: same in-place backoff; always leader-refused (quotas are
  // enforced at the leader only), so the small shed budget always applies.
  void EnqueueQuotaRetry(std::shared_ptr<PendingAppend> p);
  // True (and sheds the append locally with kQuotaExceeded) while `log` is muted by a
  // recent quota refusal; MuteQuota starts/extends the window.
  bool QuotaMuted(LogId log, AppendCallback& cb);
  void MuteQuota(LogId log);
  void ResolveConfig();
  // Probes replicas until an unsealed view at least as new as ours is found, adopts it,
  // then runs `then`. Retries use jittered exponential backoff (RetryBackoffNs) so a
  // herd of clients deposed by the same view change does not probe in lockstep.
  void ProbeThen(std::function<void()> then, int attempt = 0);
  // Re-reads "/shards/config" from ZK and adopts it if its epoch is newer; runs `then`
  // regardless of outcome. No-op without a control plane.
  void RefreshShardConfig(std::function<void()> then);
  void ReadAttempt(LogPos from, uint64_t len, ReadCallback cb, int attempt);
  void CheckTailAttempt(TailCallback cb, int attempt);
  void CheckTailOfLogAttempt(LogId log, TailCallback cb, int attempt);
  void TrimAttempt(LogPos index, TrimCallback cb, int attempt);
  // Index-path ReadNext with re-resolution: a failed index pull or shard fetch (e.g. a
  // promoted shard primary the cached view predates) refreshes "/shards/config" and
  // retries on the shared jittered backoff before degrading to the scan fallback.
  void ReadNextViaIndex(LogId log, StreamTag tag, LogPos from, uint32_t max,
                        ReadNextCallback cb, int attempt);
  // Same machinery for the named-log rank read (by_rank lookup on the (log, kNoTag)
  // list, ScanReadLog as the degraded path).
  void ReadLogViaIndex(LogId log, LogPos from, uint64_t len, ReadCallback cb,
                       int attempt);
  void PollStable(LogPos target, AppendCallback cb);
  // Prefetches the stable region past a sequential reader's cursor (one in flight).
  void MaybePrefetch(LogPos next);

  RpcEndpoint endpoint_;
  SimParams params_;
  ClusterView view_;
  ClientId client_id_;
  Rng rng_;  // jitter for config-refresh backoff; seeded per client
  RequestId next_request_id_ = 1;
  bool resolving_config_ = false;
  size_t probe_cursor_ = 0;
  uint64_t view_changes_ = 0;
  ViewId last_tail_view_ = 0;
  std::deque<std::shared_ptr<PendingAppend>> retry_queue_;
  // Per-log client-side quota mute (see SimParams::client_quota_mute_ns).
  std::map<LogId, SimTime> quota_muted_until_;

  // Read scale-out (read_path.h): sub-reads entirely below the cached stable tail are
  // routed across replicas and coalesced; subs reaching at or above it keep the old
  // waiting read at the shard primary.
  ReplicaRouter router_;
  TailCache tails_;
  ReadAheadCache readahead_;
  ReadCoalescer coalescer_;
  bool readahead_inflight_ = false;
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_ERWIN_M_CLIENT_H_
