// Erwin-st client library (§5). An append splits the record into data and metadata: the
// data goes to every replica of a client-chosen shard and the metadata <record-id,
// shard-id> to every sequencing replica — all in parallel, completing in 1 RTT. Reads
// first resolve the position->shard mapping (fetched in bulk and cached, §5.3), then
// read the record from its shard.
#ifndef SRC_LAZYLOG_ERWIN_ST_CLIENT_H_
#define SRC_LAZYLOG_ERWIN_ST_CLIENT_H_

#include <deque>
#include <map>
#include <memory>

#include "src/common/params.h"
#include "src/common/random.h"
#include "src/lazylog/cluster_view.h"
#include "src/lazylog/read_path.h"
#include "src/lazylog/shared_log_client.h"
#include "src/rpc/rpc.h"
#include "src/rpc/rpc_methods.h"
#include "src/seq/seq_messages.h"

namespace lazylog {

class ErwinStClient : public SharedLogClient {
 public:
  ErwinStClient(Network* net, const SimParams& params, ClusterView view, ClientId client_id);

  NodeId node_id() const { return endpoint_.node_id(); }

  // Seamless shard addition (§6.9): subsequent appends include the new shard in the
  // placement choice immediately.
  void AddShard(std::vector<NodeId> replicas);

  // Disables the client-side position-map cache (ablation for §6.7's observation that
  // caching makes Erwin-st reads match Erwin-m).
  void SetPosMapCacheEnabled(bool enabled) { cache_enabled_ = enabled; }

  // Test hooks for the client-failure protocol (§5.4): write only one half of an append.
  void AppendMetadataOnly(ShardId shard, AppendCallback cb);
  void AppendDataOnly(ShardId shard, Buf payload, AppendCallback cb);

  uint64_t posmap_fetches() const { return posmap_fetches_; }
  // Most recent durable/stable tail heard from CheckTail replies and read-reply
  // piggybacks; true only while fresher than client_read.tail_cache_ttl_ns.
  bool CachedTail(LogPos* durable, LogPos* stable) override;
  // Observer over every routed/classic read reply (serving replica, advertised stable,
  // records); the chaos read-staleness oracle subscribes.
  void SetReadReplyObserver(ReadCoalescer::ReplyObserver obs) {
    coalescer_.SetReplyObserver(std::move(obs));
  }
  ClientId client_id() const { return client_id_; }
  ViewId view() const { return view_.view; }
  // View that served the most recent successful CheckTail (see ErwinMClient).
  ViewId last_tail_view() const { return last_tail_view_; }
  uint64_t shard_epoch() const { return view_.shard_epoch; }
  // RPC outcome counters (chaos reports: how much of a run hit timeouts/retries).
  const RpcStats& rpc_stats() const { return endpoint_.stats(); }

 protected:
  // --- SharedLogClient (reached through LogHandle) ---
  void Append(const AppendOptions& options, Buf payload, AppendCallback cb) override;
  void Read(LogPos from, uint64_t len, ReadCallback cb) override;
  void CheckTail(TailCallback cb) override;
  void Trim(LogPos index, TrimCallback cb) override;
  // Selective read via the index tier (falls back to the base-class scan when the
  // view has no index nodes or the index path fails mid-flight).
  void ReadNext(LogId log, StreamTag tag, LogPos from, uint32_t max,
                ReadNextCallback cb) override;
  // Named-log ranged read via the index tier's rank lists (scan fallback as above).
  void ReadLog(LogId log, LogPos from, uint64_t len, ReadCallback cb) override;
  // Per-phylog tail from the leader's log cursors (SeqCheckTailReq body).
  void CheckTailOfLog(LogId log, TailCallback cb) override;
  // Name resolution against "/logs/config" in ZooKeeper.
  void ResolveLog(const std::string& name,
                  std::function<void(Status, LogId)> cb) override;

 private:
  struct PendingAppend {
    RecordId id;
    Buf payload;
    StreamTag tag = kNoTag;
    LogId log = kDefaultLog;
    ShardId shard = 0;
    AppendCallback cb;
    int attempts = 0;
    int overload_attempts = 0;
    // Every data replica acked some attempt's payload write: resends go metadata-only.
    bool data_durable = false;
    // Most recent failure seen for this append; reported if the retry budget runs out.
    Status last_error = Status::Timeout("append retries exhausted");
  };
  struct PendingRead {
    LogPos from = 0;
    uint64_t len = 0;
    ReadCallback cb;
    int attempts = 0;
  };

  void SendAppend(std::shared_ptr<PendingAppend> p);
  void EnqueueRetry(std::shared_ptr<PendingAppend> p);
  // kOverloaded resend: in-place jittered backoff, no config probe (overload is not a
  // view problem). The shed budget applies only when the leader itself refused;
  // leader-admitted appends persist until the follower gates let them through.
  void EnqueueOverloadRetry(std::shared_ptr<PendingAppend> p, bool leader_admitted);
  // kQuotaExceeded resend: same in-place backoff; always leader-refused (quotas are
  // enforced at the leader only), so the small shed budget always applies.
  void EnqueueQuotaRetry(std::shared_ptr<PendingAppend> p);
  // True (and sheds the append locally with kQuotaExceeded) while `log` is muted by a
  // recent quota refusal; MuteQuota starts/extends the window.
  bool QuotaMuted(LogId log, AppendCallback& cb);
  void MuteQuota(LogId log);
  void ResolveConfig();
  // Probes replicas until an unsealed view at least as new as ours is found; retries
  // use jittered exponential backoff (RetryBackoffNs) to avoid a thundering herd.
  void ProbeThen(std::function<void()> then, int attempt = 0);
  // Re-reads "/shards/config" from ZK and adopts it if its epoch is newer; runs `then`
  // regardless of outcome. No-op without a control plane.
  void RefreshShardConfig(std::function<void()> then);
  void CheckTailAttempt(TailCallback cb, int attempt);
  void CheckTailOfLogAttempt(LogId log, TailCallback cb, int attempt);
  void TrimAttempt(LogPos index, TrimCallback cb, int attempt);
  void TryRead(std::shared_ptr<PendingRead> rd);
  // Index-path ReadNext with re-resolution: a failed index pull or shard fetch (e.g. a
  // promoted shard primary the cached view predates) refreshes "/shards/config" and
  // retries on the shared jittered backoff before degrading to the scan fallback.
  void ReadNextViaIndex(LogId log, StreamTag tag, LogPos from, uint32_t max,
                        ReadNextCallback cb, int attempt);
  // Same machinery for the named-log rank read (by_rank lookup on the (log, kNoTag)
  // list, ScanReadLog as the degraded path).
  void ReadLogViaIndex(LogId log, LogPos from, uint64_t len, ReadCallback cb,
                       int attempt);
  void DoRead(std::shared_ptr<PendingRead> rd);
  void FetchPosMap(LogPos needed_end, std::function<void()> then);
  // Prefetches the stable region past a sequential reader's cursor (one in flight).
  void MaybePrefetch(LogPos next);

  RpcEndpoint endpoint_;
  SimParams params_;
  ClusterView view_;
  ClientId client_id_;
  Rng rng_;  // jitter for config-refresh backoff; seeded per client
  RequestId next_request_id_ = 1;
  uint64_t rr_cursor_ = 0;  // round-robin shard choice
  bool resolving_config_ = false;
  size_t probe_cursor_ = 0;
  ViewId last_tail_view_ = 0;
  std::deque<std::shared_ptr<PendingAppend>> retry_queue_;
  // Per-log client-side quota mute (see SimParams::client_quota_mute_ns).
  std::map<LogId, SimTime> quota_muted_until_;

  // Position->shard cache: posmap_[p] is the shard of position p; dense from 0.
  std::vector<uint32_t> posmap_;
  bool cache_enabled_ = true;
  bool posmap_fetch_inflight_ = false;
  uint64_t posmap_fetches_ = 0;

  // Read scale-out (read_path.h): every ranged read resolves through the posmap, whose
  // server gates on stable-gp — so every DoRead position is known-stable and may be
  // served by any replica via the load-aware router + coalescer.
  ReplicaRouter router_;
  TailCache tails_;
  ReadAheadCache readahead_;
  ReadCoalescer coalescer_;
  bool readahead_inflight_ = false;
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_ERWIN_ST_CLIENT_H_
