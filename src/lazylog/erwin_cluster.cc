#include "src/lazylog/erwin_cluster.h"

#include "src/common/logging.h"

namespace lazylog {

ErwinCluster::ErwinCluster(const ErwinClusterOptions& options) : options_(options) {
  net_ = std::make_unique<Network>(&loop_, options_.params.net, options_.params.seed);

  if (options_.with_control_plane) {
    zk_ = std::make_unique<ZooKeeperLite>(net_.get(), options_.params.control);
  }

  // Storage shards.
  const ShardMode shard_mode =
      options_.mode == ErwinMode::kM ? ShardMode::kBlackBox : ShardMode::kStModified;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    std::vector<std::unique_ptr<ShardServer>> replicas;
    std::vector<NodeId> ids;
    for (uint32_t r = 0; r < options_.shard_replication; ++r) {
      replicas.push_back(std::make_unique<ShardServer>(net_.get(), options_.params, shard_mode,
                                                       s, options_.num_shards));
      ids.push_back(replicas.back()->node_id());
    }
    for (auto& rep : replicas) {
      rep->SetReplicaSet(ids);
    }
    shards_.push_back(std::move(replicas));
  }

  // Index tier: aggregator nodes pulling per-shard tag-index deltas.
  const NodeId zk_node = zk_ ? zk_->node_id() : kInvalidNode;
  for (uint32_t i = 0; i < options_.num_index_nodes; ++i) {
    index_nodes_.push_back(
        std::make_unique<IndexNode>(net_.get(), options_.params, i, zk_node));
  }
  for (auto& ix : index_nodes_) {
    ix->Start(ShardPrimaries());
  }

  // Sequencing replicas; replica 0 starts as leader.
  std::vector<NodeId> seq_config;
  for (int i = 0; i < options_.params.seq.num_replicas; ++i) {
    seq_replicas_.push_back(std::make_unique<SequencingReplica>(
        net_.get(), options_.params, options_.mode, static_cast<uint32_t>(i), zk_node));
    seq_config.push_back(seq_replicas_.back()->node_id());
  }
  for (auto& rep : seq_replicas_) {
    rep->Start(seq_config, ShardPrimaries(), AllShardServers(), IndexNodeIds());
  }

  if (options_.with_control_plane) {
    controller_ = std::make_unique<Controller>(net_.get(), options_.params, zk_->node_id());
    std::vector<std::vector<NodeId>> shard_matrix;
    for (const auto& shard : shards_) {
      std::vector<NodeId> ids;
      for (const auto& rep : shard) {
        ids.push_back(rep->node_id());
      }
      shard_matrix.push_back(std::move(ids));
    }
    controller_->SetIndexNodes(IndexNodeIds());
    controller_->Start(seq_config, seq_config[0], std::move(shard_matrix));
    // Let sessions/ephemerals establish before traffic starts.
    loop_.RunUntil(loop_.Now() + 2 * options_.params.control.session_heartbeat_ns);
  }
}

ErwinCluster::~ErwinCluster() = default;

std::vector<NodeId> ErwinCluster::AllShardServers() const {
  std::vector<NodeId> ids;
  for (const auto& shard : shards_) {
    for (const auto& rep : shard) {
      ids.push_back(rep->node_id());
    }
  }
  return ids;
}

std::vector<NodeId> ErwinCluster::ShardPrimaries() const {
  std::vector<NodeId> ids;
  for (const auto& shard : shards_) {
    ids.push_back(shard[0]->node_id());
  }
  return ids;
}

std::vector<NodeId> ErwinCluster::IndexNodeIds() const {
  std::vector<NodeId> ids;
  for (const auto& ix : index_nodes_) {
    ids.push_back(ix->node_id());
  }
  return ids;
}

ClusterView ErwinCluster::MakeView() const {
  ClusterView view;
  // Take the configuration from a live, unsealed replica (after reconfigurations,
  // replica 0 may be dead or hold a stale view).
  const SequencingReplica* source = seq_replicas_[0].get();
  for (const auto& rep : seq_replicas_) {
    if (net_->IsUp(rep->node_id()) && !rep->sealed()) {
      source = rep.get();
      break;
    }
  }
  view.view = source->view();
  view.seq_config = source->config();
  if (view.seq_config.empty()) {
    for (const auto& rep : seq_replicas_) {
      view.seq_config.push_back(rep->node_id());
    }
  }
  for (const auto& shard : shards_) {
    std::vector<NodeId> ids;
    for (const auto& rep : shard) {
      ids.push_back(rep->node_id());
    }
    view.shards.push_back(std::move(ids));
  }
  // Only live index nodes are handed out: a crashed aggregator would turn every
  // ReadNext routed to it into a timeout-then-scan.
  for (const auto& ix : index_nodes_) {
    if (net_->IsUp(ix->node_id())) {
      view.index_nodes.push_back(ix->node_id());
    }
  }
  if (controller_) {
    view.zk = zk_->node_id();
    view.shard_epoch = controller_->shard_epoch();
    view.logs = controller_->log_registry();
    view.log_epoch = controller_->log_epoch();
  } else {
    view.logs = log_registry_;
    view.log_epoch = log_epoch_;
  }
  return view;
}

// --- virtual logs ------------------------------------------------------------------------

LogId ErwinCluster::CreateLog(const std::string& name, uint64_t quota_per_sec) {
  if (controller_) {
    // Id assignment is synchronous; the "/logs/config" write and the replica push
    // propagate on the event loop (run the sim to let quota enforcement take effect).
    return controller_->CreateLog(name, quota_per_sec);
  }
  for (const LogRegistryEntry& entry : log_registry_) {
    if (entry.name == name && !entry.deleted) {
      return entry.id;
    }
  }
  LogRegistryEntry entry;
  entry.id = next_log_id_++;
  entry.name = name;
  entry.quota_per_sec = quota_per_sec;
  log_registry_.push_back(std::move(entry));
  log_epoch_++;
  InstallLogRegistryOnReplicas();
  return log_registry_.back().id;
}

void ErwinCluster::DeleteLog(const std::string& name) {
  if (controller_) {
    controller_->DeleteLog(name);
    return;
  }
  for (LogRegistryEntry& entry : log_registry_) {
    if (entry.name == name && !entry.deleted) {
      entry.deleted = true;
      log_epoch_++;
      InstallLogRegistryOnReplicas();
      return;
    }
  }
}

const std::vector<LogRegistryEntry>& ErwinCluster::log_registry() const {
  return controller_ ? controller_->log_registry() : log_registry_;
}

void ErwinCluster::InstallLogRegistryOnReplicas() {
  // No control plane to push through: install the table directly (test-only surgery,
  // like the pre-controller shard wiring).
  for (auto& rep : seq_replicas_) {
    rep->InstallLogRegistry(log_epoch_, log_registry_);
  }
}

std::unique_ptr<ErwinMClient> ErwinCluster::MakeMClient() {
  LL_CHECK(options_.mode == ErwinMode::kM, "M client on an st cluster");
  return std::make_unique<ErwinMClient>(net_.get(), options_.params, MakeView(),
                                        next_client_id_++);
}

std::unique_ptr<ErwinStClient> ErwinCluster::MakeStClient() {
  LL_CHECK(options_.mode == ErwinMode::kSt, "st client on an M cluster");
  return std::make_unique<ErwinStClient>(net_.get(), options_.params, MakeView(),
                                         next_client_id_++);
}

std::unique_ptr<SharedLogClient> ErwinCluster::MakeClient() {
  if (options_.mode == ErwinMode::kM) {
    return MakeMClient();
  }
  return MakeStClient();
}

void ErwinCluster::CrashSeqReplica(uint32_t index) {
  LL_CHECK(index < seq_replicas_.size(), "bad replica index");
  net_->Crash(seq_replicas_[index]->node_id());
  seq_replicas_[index]->StopHeartbeats();
}

void ErwinCluster::CrashIndexNode(uint32_t index) {
  LL_CHECK(index < index_nodes_.size(), "bad index-node index");
  net_->Crash(index_nodes_[index]->node_id());
  index_nodes_[index]->StopHeartbeats();
}

std::vector<NodeId> ErwinCluster::AddShard() {
  LL_CHECK(options_.mode == ErwinMode::kSt, "runtime shard add requires Erwin-st");
  const ShardId s = static_cast<ShardId>(shards_.size());
  std::vector<std::unique_ptr<ShardServer>> replicas;
  std::vector<NodeId> ids;
  for (uint32_t r = 0; r < options_.shard_replication; ++r) {
    replicas.push_back(std::make_unique<ShardServer>(net_.get(), options_.params,
                                                     ShardMode::kStModified, s,
                                                     static_cast<uint32_t>(shards_.size() + 1)));
    ids.push_back(replicas.back()->node_id());
  }
  for (auto& rep : replicas) {
    rep->SetReplicaSet(ids);
    // The new shard adopts the current stable prefix and metadata offset (§6.9). The
    // offset is the leader's *assignment* frontier: the new cursor starts there, so
    // the first window it receives has range_lo == this value — bootstrapping at
    // ordered_gp would leave the shard parked forever on positions it never gets.
    rep->Bootstrap(leader().stable_gp(), leader().assigned_gp());
  }
  for (auto& seq : seq_replicas_) {
    seq->AddShard(ids[0], ids);
  }
  for (auto& ix : index_nodes_) {
    ix->AddShard(ids[0]);
  }
  shards_.push_back(std::move(replicas));
  if (controller_) {
    controller_->AddShard(ids);
  }
  return ids;
}

NodeId ErwinCluster::ReplaceShardReplica(uint32_t shard, uint32_t replica_index) {
  LL_CHECK(shard < shards_.size(), "bad shard index");
  LL_CHECK(replica_index > 0 && replica_index < shards_[shard].size(),
           "can only replace a non-primary replica");
  const NodeId old_node = shards_[shard][replica_index]->node_id();
  net_->Crash(old_node);
  const ShardMode mode =
      options_.mode == ErwinMode::kM ? ShardMode::kBlackBox : ShardMode::kStModified;
  auto fresh = std::make_unique<ShardServer>(net_.get(), options_.params, mode, shard,
                                             static_cast<uint32_t>(shards_.size()));
  const NodeId new_node = fresh->node_id();
  // Install the replacement in the shard's replica set. The old server object stays
  // alive (inert behind its crashed network node) so its still-scheduled timers cannot
  // dangle.
  retired_shards_.push_back(std::move(shards_[shard][replica_index]));
  shards_[shard][replica_index] = std::move(fresh);
  std::vector<NodeId> ids;
  for (const auto& rep : shards_[shard]) {
    ids.push_back(rep->node_id());
  }
  for (auto& rep : shards_[shard]) {
    rep->SetReplicaSet(ids);
  }
  if (controller_) {
    // Real membership change through the control plane: state copy over RPC, config
    // persisted to ZK under a bumped epoch, sequencing replicas re-wired via RPC.
    // Clients discover the change by refreshing "/shards/config".
    controller_->ReplaceShardReplica(shard, replica_index, new_node, [](Status s) {
      if (!s.ok()) {
        LLOG(kError) << "controller shard replacement failed: " << s.ToString();
      }
    });
  } else {
    // No control plane (unit fixtures): copy state and re-wire the orderers directly.
    shards_[shard][replica_index]->CopyStateFrom(shards_[shard][0]->node_id(), [](Status s) {
      LL_CHECK(s.ok(), "shard state copy failed: " + s.ToString());
    });
    for (auto& seq : seq_replicas_) {
      seq->ReplaceShardServer(old_node, new_node);
    }
  }
  return new_node;
}

NodeId ErwinCluster::CrashShardPrimary(uint32_t shard) {
  LL_CHECK(shard < shards_.size(), "bad shard index");
  LL_CHECK(shards_[shard].size() > 1, "no backup to promote");
  LL_CHECK(controller_ != nullptr, "shard primary failover requires the control plane");
  const NodeId old_node = shards_[shard][0]->node_id();
  net_->Crash(old_node);
  DrivePromotion(shard);
  return old_node;
}

NodeId ErwinCluster::IsolateShardPrimary(uint32_t shard) {
  LL_CHECK(shard < shards_.size(), "bad shard index");
  LL_CHECK(shards_[shard].size() > 1, "no backup to promote");
  LL_CHECK(controller_ != nullptr, "shard primary failover requires the control plane");
  const NodeId old_node = shards_[shard][0]->node_id();
  // Sever every server-side link; client links stay up (a data write the zombie acks
  // is still durable — the payload went to all replicas — so that is harmless).
  for (NodeId n : AllShardServers()) {
    if (n != old_node) {
      net_->SetPartitioned(old_node, n, true);
    }
  }
  for (const auto& rep : seq_replicas_) {
    net_->SetPartitioned(old_node, rep->node_id(), true);
  }
  for (NodeId n : IndexNodeIds()) {
    net_->SetPartitioned(old_node, n, true);
  }
  net_->SetPartitioned(old_node, zk_->node_id(), true);
  net_->SetPartitioned(old_node, controller_->node_id(), true);
  DrivePromotion(shard);
  return old_node;
}

void ErwinCluster::DrivePromotion(uint32_t shard) {
  // Shard servers keep no ZK ephemerals; model the failure detector as two session
  // heartbeats of silence before the controller reacts.
  const uint64_t delay = 2 * options_.params.control.session_heartbeat_ns;
  loop_.Schedule(delay, [this, shard]() {
    controller_->PromoteShardPrimary(shard, [this, shard](Status s) {
      if (!s.ok()) {
        LLOG(kError) << "shard " << shard << " primary promotion failed: " << s.ToString();
        return;
      }
      AdoptPromotedOrder(shard);
    });
  });
}

void ErwinCluster::AdoptPromotedOrder(uint32_t shard) {
  const std::vector<NodeId>& order = controller_->shards()[shard];
  std::vector<std::unique_ptr<ShardServer>> new_reps;
  for (NodeId n : order) {
    for (auto& rep : shards_[shard]) {
      if (rep && rep->node_id() == n) {
        new_reps.push_back(std::move(rep));
      }
    }
  }
  // Whatever the controller dropped (the dead primary, pruned peers) is retired, not
  // destroyed: its scheduled timers may still fire.
  for (auto& rep : shards_[shard]) {
    if (rep) {
      retired_shards_.push_back(std::move(rep));
    }
  }
  shards_[shard] = std::move(new_reps);
}

SequencingReplica& ErwinCluster::leader() {
  for (auto& rep : seq_replicas_) {
    if (rep->is_leader() && !rep->sealed() && net_->IsUp(rep->node_id())) {
      return *rep;
    }
  }
  return *seq_replicas_[0];
}

}  // namespace lazylog
