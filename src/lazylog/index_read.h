// Client-side selective-read path shared by the Erwin clients: one position lookup at
// an index node (kIndexReadNext), then shard-direct record fetches (kShardMultiRead)
// grouped by owning shard — no position-map resolution, no scan. Falls back to the
// caller-supplied scan on index unavailability, and clamps the resume cursor at the
// first position a shard replica could not serve yet, so the returned window is always
// a gap-free projection of the stream.
#ifndef SRC_LAZYLOG_INDEX_READ_H_
#define SRC_LAZYLOG_INDEX_READ_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/params.h"
#include "src/index/index_messages.h"
#include "src/lazylog/cluster_view.h"
#include "src/lazylog/read_path.h"
#include "src/lazylog/shared_log_client.h"
#include "src/rpc/rpc.h"
#include "src/rpc/rpc_methods.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

// Runs one ReadNext against the index tier for stream (log, tag). In the default
// (position-cursor) mode `from`/`next_from` are global positions. With `by_rank` set,
// `from` is an index into the stream's merged list — the phylog rank cursor — and the
// returned records are re-labelled with their ranks (`pos` = from + i); this is the
// named-log Read path (tag == kNoTag selects the per-log rank list). `fallback` is
// invoked (instead of `cb`) when the index path cannot serve — index node unreachable,
// stale shard ids, or a failed shard fetch; the caller supplies its scan there.
// `router`/`tails` (optional) plug the shard fetches into the client's load-aware
// replica routing and tail cache: indexed positions are below the index's stable
// frontier, so any replica may serve them, and a replica whose own frontier trails
// simply clips — which the resume-cursor clamp below already absorbs.
inline void IndexSelectiveRead(RpcEndpoint* endpoint, const SimParams* params,
                               const ClusterView* view, ClientId client_id, LogId log,
                               StreamTag tag, LogPos from, uint32_t max, bool by_rank,
                               SharedLogClient::ReadNextCallback cb,
                               std::function<void()> fallback,
                               ReplicaRouter* router = nullptr,
                               TailCache* tails = nullptr) {
  const NodeId index_node = view->index_nodes[client_id % view->index_nodes.size()];
  IndexReadNextReq req;
  req.tag = tag;
  req.from = from;
  req.max = max;
  req.log = log;
  req.by_rank = by_rank;
  endpoint->CallMsg(
      index_node, kIndexReadNext, req,
      [endpoint, params, view, client_id, from, max, by_rank, router, tails,
       cb = std::move(cb), fallback = std::move(fallback)](Status s, Decoder d) mutable {
        if (s.code() == StatusCode::kInvalidArgument) {
          cb(std::move(s), {}, from);
          return;
        }
        IndexReadNextResp resp;
        if (!s.ok() || !resp.Decode(d)) {
          fallback();
          return;
        }
        if (resp.positions.empty()) {
          // Covered-but-empty. Position mode: the stream truly has no records in
          // [from, indexed_upto); indexed_upto <= from means the index has not caught
          // up past `from` yet — no progress, the caller polls. Rank mode: the rank
          // space is dense, so an empty page always means "not indexed yet".
          const LogPos next =
              by_rank ? from : std::max<LogPos>(from, resp.indexed_upto);
          cb(Status::Ok(), {}, next);
          return;
        }
        // Group the positions by owning shard for one multi-read per shard.
        std::unordered_map<uint64_t, ShardMultiReadReq> per_shard;
        for (size_t i = 0; i < resp.positions.size(); ++i) {
          if (resp.shard_ids[i] >= view->shards.size()) {
            fallback();  // stale view: a shard this client has not discovered yet
            return;
          }
          per_shard[resp.shard_ids[i]].positions.push_back(resp.positions[i]);
        }
        struct FetchState {
          std::unordered_map<uint64_t, Record> by_pos;
          bool decode_failed = false;
        };
        auto state = std::make_shared<FetchState>();
        std::vector<std::pair<NodeId, ShardMultiReadReq>> subs;
        for (auto& [shard, sreq] : per_shard) {
          const auto& replicas = view->shards[shard];
          const NodeId target = router ? router->PickStable(replicas)
                                       : replicas[client_id % replicas.size()];
          subs.emplace_back(target, std::move(sreq));
        }
        auto gather = Gather::Create(
            subs.size(), [state, resp = std::move(resp), from, max, by_rank,
                          cb = std::move(cb),
                          fallback = std::move(fallback)](const std::vector<Status>& ss) {
              for (const Status& st : ss) {
                if (!st.ok()) {
                  fallback();
                  return;
                }
              }
              if (state->decode_failed) {
                fallback();
                return;
              }
              // Assemble the stream window in index order, stopping at the first
              // position a replica could not serve yet (its stable frontier may trail
              // the index node's): the cursor resumes exactly there, so nothing is
              // skipped.
              std::vector<PositionedRecord> out;
              LogPos next_from = resp.indexed_upto;
              bool clipped = false;
              for (uint64_t p : resp.positions) {
                auto it = state->by_pos.find(p);
                if (it == state->by_pos.end()) {
                  next_from = p;
                  clipped = true;
                  break;
                }
                const LogPos label = by_rank ? from + out.size() : p;
                out.push_back(PositionedRecord{label, std::move(it->second)});
              }
              if (by_rank) {
                // Ranks are dense: whatever was assembled is exactly
                // [from, from + out.size()), clipped or not.
                cb(Status::Ok(), std::move(out), from + out.size());
                return;
              }
              if (!clipped) {
                // A full window (max entries) may have more stream records between its
                // last position and the index frontier, so it only covers up to
                // last+1; an unfilled window covers the whole indexed range.
                const LogPos last = resp.positions.back() + 1;
                next_from = resp.positions.size() < max ? std::max(resp.indexed_upto, last)
                                                        : last;
              }
              next_from = std::max<LogPos>(next_from, from);
              cb(Status::Ok(), std::move(out), next_from);
            });
        for (size_t i = 0; i < subs.size(); ++i) {
          auto slot = gather->Slot(i);
          const NodeId target = subs[i].first;
          if (router) {
            router->OnIssue(target);
          }
          const SimTime t0 = endpoint->loop()->Now();
          endpoint->CallMsg(subs[i].first, kShardMultiRead, subs[i].second,
                            [endpoint, router, tails, target, t0, state,
                             slot](Status st, Decoder rd) {
                              bool observed = false;
                              if (st.ok()) {
                                ShardReadResp rresp;
                                if (rresp.Decode(rd)) {
                                  if (router) {
                                    router->OnReply(target,
                                                    endpoint->loop()->Now() - t0,
                                                    rresp.queue_ns);
                                    observed = true;
                                  }
                                  if (tails) {
                                    tails->Note(endpoint->loop()->Now(),
                                                rresp.durable_tail, rresp.stable_gp);
                                  }
                                  for (auto& pr : rresp.records) {
                                    state->by_pos.emplace(pr.pos, std::move(pr.record));
                                  }
                                } else {
                                  state->decode_failed = true;
                                }
                              }
                              if (router && !observed) {
                                router->OnReply(target, endpoint->loop()->Now() - t0, 0);
                              }
                              slot(std::move(st), Decoder());
                            },
                            params->rpc_timeout_ns);
        }
      },
      params->rpc_timeout_ns);
}

}  // namespace lazylog

#endif  // SRC_LAZYLOG_INDEX_READ_H_
