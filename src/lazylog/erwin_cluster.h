// One-object assembly of a complete Erwin deployment on the simulated testbed: event
// loop, network, ZooKeeperLite + controller (optional), sequencing replicas, storage
// shards, and client factories. Tests, benches, and examples build everything through
// this.
#ifndef SRC_LAZYLOG_ERWIN_CLUSTER_H_
#define SRC_LAZYLOG_ERWIN_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/common/params.h"
#include "src/control/zookeeper.h"
#include "src/lazylog/cluster_view.h"
#include "src/lazylog/erwin_m_client.h"
#include "src/lazylog/erwin_st_client.h"
#include "src/index/index_node.h"
#include "src/seq/controller.h"
#include "src/seq/sequencing_replica.h"
#include "src/sim/network.h"
#include "src/storage/shard_server.h"

namespace lazylog {

struct ErwinClusterOptions {
  ErwinMode mode = ErwinMode::kM;
  uint32_t num_shards = 1;
  uint32_t shard_replication = 3;  // replicas per shard (paper: 2 or 3)
  // Index-tier aggregators (selective reads). 1 by default so ReadNext works out of
  // the box; 0 disables the tier (clients scan-fall-back).
  uint32_t num_index_nodes = 1;
  bool with_control_plane = true;  // ZooKeeperLite + controller (needed for §4.5 tests)
  SimParams params;
};

class ErwinCluster {
 public:
  explicit ErwinCluster(const ErwinClusterOptions& options);
  ~ErwinCluster();

  ErwinCluster(const ErwinCluster&) = delete;
  ErwinCluster& operator=(const ErwinCluster&) = delete;

  EventLoop& loop() { return loop_; }
  Network& network() { return *net_; }
  const SimParams& params() const { return options_.params; }
  ErwinMode mode() const { return options_.mode; }

  // Client factories. Clients are owned by the caller but must not outlive the cluster.
  std::unique_ptr<ErwinMClient> MakeMClient();
  std::unique_ptr<ErwinStClient> MakeStClient();
  // Mode-dispatched factory for code that only needs the SharedLogClient interface.
  std::unique_ptr<SharedLogClient> MakeClient();

  // Current topology for hand-built clients.
  ClusterView MakeView() const;

  // --- virtual logs ---------------------------------------------------------------------
  // Registers a named log (id assigned synchronously, never reused) with an optional
  // per-tenant quota (admitted appends/s at the leader; 0 = unlimited). With a control
  // plane the registry propagates through the controller (ZK "/logs/config" +
  // kSeqUpdateLogs) on the event loop; without one it is installed on the replicas
  // directly. Clients built afterwards see it in their view; earlier clients resolve
  // names via Open()'s ZK fallback or an explicit InstallLogRegistry.
  LogId CreateLog(const std::string& name, uint64_t quota_per_sec = 0);
  // Tombstones the named log: the id stays reserved and the leader refuses new appends.
  void DeleteLog(const std::string& name);
  const std::vector<LogRegistryEntry>& log_registry() const;

  // --- runtime operations -------------------------------------------------------------
  // Crashes sequencing replica `index` (network drop + heartbeat stop). The control
  // plane detects and reconfigures; watch via controller().
  void CrashSeqReplica(uint32_t index);
  // Crashes index node `index` (network drop + heartbeat stop). Selective reads routed
  // to it fail over to the scan fallback; the log itself is unaffected.
  void CrashIndexNode(uint32_t index);
  // Adds a shard at runtime (Erwin-st). Returns its replica node ids; existing
  // ErwinStClients must be told via AddShard().
  std::vector<NodeId> AddShard();
  // Replaces a failed (non-primary) shard replica with a fresh server that copies both
  // ordered and unordered records from a live replica (§5.4). The old node is crashed,
  // the new one installed in the replica set and the orderers' broadcast lists.
  // Returns the new server's node id. Clients built before the replacement keep the old
  // membership in their view; Erwin-st writers must be given the new view (deployments
  // would push shard membership through the control plane).
  NodeId ReplaceShardReplica(uint32_t shard, uint32_t replica_index);
  // Crashes shard `shard`'s primary and drives a controller-led promotion of the
  // most-complete surviving backup (ordered handoff of the acked-but-unordered tail).
  // Shard servers keep no liveness ephemerals, so detection is modelled as two session
  // heartbeats of silence before the controller reacts — fig17 and the chaos oracles
  // see a realistic detect->seal->handoff->open breakdown. Requires the control plane
  // and at least one backup. Returns the crashed node id.
  NodeId CrashShardPrimary(uint32_t shard);
  // Same promotion, but the primary is isolated (all server-side links severed, the
  // process keeps running) instead of crashed: the zombie keeps firing no-op timers
  // and replication attempts, which the promotion epoch + sender fencing must render
  // harmless. Returns the isolated node id.
  NodeId IsolateShardPrimary(uint32_t shard);

  // --- accessors for tests/benches ------------------------------------------------------
  SequencingReplica& seq_replica(uint32_t i) { return *seq_replicas_[i]; }
  uint32_t num_seq_replicas() const { return static_cast<uint32_t>(seq_replicas_.size()); }
  ShardServer& shard(uint32_t s, uint32_t r) { return *shards_[s][r]; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t shard_replication() const { return options_.shard_replication; }
  // Current replica count of shard `s`. Starts at shard_replication() but shrinks when
  // a primary failover drops the deposed node (and any non-sealing survivor) from the
  // committed order — callers gridding (shard, replica) slots must re-check this.
  uint32_t shard_size(uint32_t s) const { return static_cast<uint32_t>(shards_[s].size()); }
  IndexNode& index_node(uint32_t i) { return *index_nodes_[i]; }
  uint32_t num_index_nodes() const { return static_cast<uint32_t>(index_nodes_.size()); }
  Controller* controller() { return controller_.get(); }
  ZooKeeperLite* zookeeper() { return zk_.get(); }
  // The sequencing leader in the *current* view (asks the controller if present).
  SequencingReplica& leader();

  // Runs the simulation.
  void RunFor(uint64_t ns) { loop_.RunUntil(loop_.Now() + ns); }
  void RunUntilIdle() { loop_.RunUntilIdle(); }

 private:
  std::vector<NodeId> AllShardServers() const;
  std::vector<NodeId> ShardPrimaries() const;
  std::vector<NodeId> IndexNodeIds() const;
  // Schedules the detection delay + controller promotion after the primary failed.
  void DrivePromotion(uint32_t shard);
  // Direct registry install for control-plane-less clusters.
  void InstallLogRegistryOnReplicas();
  // Mirrors the controller's committed post-promotion order in the harness's own
  // matrix (accessors, MakeView) and retires servers dropped from the set.
  void AdoptPromotedOrder(uint32_t shard);

  ErwinClusterOptions options_;
  EventLoop loop_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ZooKeeperLite> zk_;
  std::unique_ptr<Controller> controller_;
  std::vector<std::unique_ptr<SequencingReplica>> seq_replicas_;
  std::vector<std::vector<std::unique_ptr<ShardServer>>> shards_;
  std::vector<std::unique_ptr<IndexNode>> index_nodes_;
  // Replaced shard servers are kept alive (crashed, inert) because their periodic
  // timers may still be scheduled on the event loop.
  std::vector<std::unique_ptr<ShardServer>> retired_shards_;
  // Named-log registry for clusters without a control plane (the controller owns it
  // otherwise); ids count up from 1 (0 = physical log).
  std::vector<LogRegistryEntry> log_registry_;
  uint64_t log_epoch_ = 0;
  LogId next_log_id_ = 1;
  ClientId next_client_id_ = 1;
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_ERWIN_CLUSTER_H_
