// The shared-log client interface (the paper's Figure 2). Erwin-m, Erwin-st, and the
// eager-ordering baselines (Corfu, Scalog, KafkaLite) all implement it, so the example
// applications and benches run unchanged on any of them.
//
//   append    - make the record durable; with LazyLog it is *not* yet bound to a
//               position (returns only a durability flag).
//   read      - records at positions [from, from+len); enforced to be the final,
//               linearizable binding before it is served.
//   checkTail - number of durable records in the log.
//   trim      - garbage-collect positions below `index`.
//
// All calls are asynchronous (the simulator is event-driven); completion callbacks fire
// on the simulated event loop.
#ifndef SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
#define SRC_LAZYLOG_SHARED_LOG_CLIENT_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/params.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

// Jittered exponential backoff for client config re-resolution (STALE_VIEW / sealed /
// unreachable-leader retries). Pure so tests can assert the spread: `attempt` doubles
// the base up to a cap, and `jitter01` (uniform in [0, 1)) scatters concurrent clients
// so a view change does not produce a thundering herd of simultaneous probes.
inline uint64_t RetryBackoffNs(uint32_t attempt, double jitter01) {
  const uint64_t base =
      std::min<uint64_t>(8 * kMs, (250 * kUs) << std::min<uint32_t>(attempt, 5u));
  return base / 2 + static_cast<uint64_t>(static_cast<double>(base / 2) * jitter01);
}

// Jittered backoff for admission-control refusals, much shorter than RetryBackoffNs.
// A rejection is served in microseconds (before the sequencer's CPU charge), and the
// gate opens and closes in cycles a few hundred microseconds long as the ring drains;
// retries must return within one cycle or the freed slots sit idle on a core that has
// work waiting — client backoff becomes server idle time. The attempt still doubles
// the base so persistent overload thins the retry herd instead of hammering the gate.
inline uint64_t OverloadBackoffNs(uint32_t attempt, double jitter01) {
  const uint64_t base =
      std::min<uint64_t>(1 * kMs, (50 * kUs) << std::min<uint32_t>(attempt, 4u));
  return base / 2 + static_cast<uint64_t>(static_cast<double>(base / 2) * jitter01);
}

class SharedLogClient {
 public:
  // append: OK once the record is safely stored (LazyLog semantics: the position is
  // assigned later; conventional logs have it bound already). Error codes distinguish
  // why an append was given up on: kSealed / kStaleView (reconfiguration fenced the
  // view the client was writing into), kTimeout (no response within the retry budget),
  // kRejected (Erwin-st data arrived after the no-op decision — the append is lost),
  // kOverloaded (admission control shed the append and the in-place backoff budget ran
  // out — never returned for an append that was already acked; safe to retry later),
  // or kUnavailable / kInternal for generic failure.
  using AppendCallback = std::function<void(Status)>;
  // read: positioned records in ascending position order. No-op records (Erwin-st
  // client-failure resolutions) are delivered with no_op=true; applications skip them.
  using ReadCallback = std::function<void(Status, std::vector<PositionedRecord>)>;
  // checkTail: `durable` = number of durable records; `stable` = prefix already bound
  // to final positions (stable == durable in eager-ordering logs).
  using TailCallback = std::function<void(Status, LogPos durable, LogPos stable)>;
  using TrimCallback = std::function<void(Status)>;
  // readNext: the stream-tag selective read. `records` are the records of the
  // requested stream in [from, next_from), in ascending position order — an exact,
  // gap-free projection of the global order over that range: every record of the
  // stream in [from, next_from) is included, none from outside it. `next_from` is the
  // resume cursor; next_from == from means no progress was possible yet (the index is
  // still catching up, or the stream has no stable records past `from`).
  using ReadNextCallback =
      std::function<void(Status, std::vector<PositionedRecord> records, LogPos next_from)>;

  virtual ~SharedLogClient() = default;

  // View that served the most recent successful checkTail. 0 where views do not apply
  // (the eager baselines run a single static configuration). The chaos oracles use this
  // to scope per-client durable-tail monotonicity per view: the durable tail may shrink
  // across a view change (an uncommitted suffix is legally dropped), never within one.
  virtual ViewId last_tail_view() const { return 0; }

  // The payload is a refcounted Buf handle; implementations thread it through to the
  // wire without copying the bytes. std::string arguments convert implicitly.
  virtual void Append(Buf payload, AppendCallback cb) = 0;
  virtual void Read(LogPos from, uint64_t len, ReadCallback cb) = 0;
  virtual void CheckTail(TailCallback cb) = 0;
  virtual void Trim(LogPos index, TrimCallback cb) = 0;

  // Tagged append: the record carries `tag` as its stream name through the wire format
  // and into the log, where the index tier picks it up. kNoTag appends identically to
  // the untagged overload. The default delegates untagged (for implementations that
  // predate tags); every real client overrides it to thread the tag.
  virtual void Append(StreamTag tag, Buf payload, AppendCallback cb) {
    (void)tag;
    Append(std::move(payload), std::move(cb));
  }

  // Selective read: up to `max` records of stream `tag` at or after global position
  // `from`. The default scans — CheckTail, then ranged Reads filtered by tag — which
  // works on any implementation whose records carry tags (the eager baselines
  // included) but costs reads proportional to the whole log. The Erwin clients
  // override it with an index-node position lookup + shard-direct fetches.
  virtual void ReadNext(StreamTag tag, LogPos from, uint32_t max, ReadNextCallback cb) {
    ScanReadNext(tag, from, max, std::move(cb));
  }

  // Point read of one record of stream `tag` at position `pos`. Served by the plain
  // read path; fails with kInvalidArgument if the record at `pos` belongs to a
  // different stream (or is untagged/no-op filler).
  virtual void ReadTag(StreamTag tag, LogPos pos, ReadCallback cb);

 protected:
  // The scan fallback behind the default ReadNext; overrides use it when the index
  // tier is unreachable or absent.
  void ScanReadNext(StreamTag tag, LogPos from, uint32_t max, ReadNextCallback cb);

 private:
  struct ScanState;
  void ScanStep(std::shared_ptr<ScanState> st);
};

// --- scan fallback ---------------------------------------------------------------------

struct SharedLogClient::ScanState {
  StreamTag tag = kNoTag;
  LogPos cursor = 0;    // next unscanned position
  LogPos stable = 0;    // scan ceiling (stable prefix at CheckTail time)
  uint32_t max = 0;
  std::vector<PositionedRecord> out;
  ReadNextCallback cb;
};

inline void SharedLogClient::ScanReadNext(StreamTag tag, LogPos from, uint32_t max,
                                          ReadNextCallback cb) {
  if (tag == kNoTag) {
    cb(Status::InvalidArgument("read-next requires a stream tag"), {}, from);
    return;
  }
  if (max == 0) {
    cb(Status::Ok(), {}, from);
    return;
  }
  auto st = std::make_shared<ScanState>();
  st->tag = tag;
  st->cursor = from;
  st->max = max;
  st->cb = std::move(cb);
  CheckTail([this, st](Status s, LogPos, LogPos stable) {
    if (!s.ok()) {
      st->cb(std::move(s), {}, st->cursor);
      return;
    }
    st->stable = stable;
    ScanStep(std::move(st));
  });
}

inline void SharedLogClient::ScanStep(std::shared_ptr<ScanState> st) {
  constexpr uint64_t kScanChunk = 64;
  if (st->cursor >= st->stable || st->out.size() >= st->max) {
    st->cb(Status::Ok(), std::move(st->out), st->cursor);
    return;
  }
  const uint64_t len = std::min<uint64_t>(kScanChunk, st->stable - st->cursor);
  const LogPos chunk_start = st->cursor;
  Read(chunk_start, len,
       [this, st, chunk_start, len](Status s, std::vector<PositionedRecord> recs) {
         if (!s.ok()) {
           st->cb(std::move(s), {}, chunk_start);
           return;
         }
         bool truncated = false;
         for (PositionedRecord& pr : recs) {
           if (st->out.size() >= st->max) {
             // max reached mid-chunk: the cursor stops after the last consumed
             // position, so the uninspected tail is not claimed as covered.
             truncated = true;
             break;
           }
           st->cursor = pr.pos + 1;
           if (!pr.record.no_op && pr.record.tag == st->tag) {
             st->out.push_back(std::move(pr));
           }
         }
         if (!truncated) {
           st->cursor = chunk_start + len;  // whole chunk inspected
         }
         ScanStep(std::move(st));
       });
}

inline void SharedLogClient::ReadTag(StreamTag tag, LogPos pos, ReadCallback cb) {
  if (tag == kNoTag) {
    cb(Status::InvalidArgument("read-tag requires a stream tag"), {});
    return;
  }
  Read(pos, 1, [tag, pos, cb = std::move(cb)](Status s, std::vector<PositionedRecord> recs) {
    if (!s.ok()) {
      cb(std::move(s), {});
      return;
    }
    if (recs.size() != 1 || recs[0].pos != pos) {
      cb(Status::Internal("point read returned wrong record"), {});
      return;
    }
    if (recs[0].record.no_op || recs[0].record.tag != tag) {
      cb(Status::InvalidArgument("record at position belongs to a different stream"), {});
      return;
    }
    cb(Status::Ok(), std::move(recs));
  });
}

}  // namespace lazylog

#endif  // SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
