// The shared-log client interface (the paper's Figure 2). Erwin-m, Erwin-st, and the
// eager-ordering baselines (Corfu, Scalog, KafkaLite) all implement it, so the example
// applications and benches run unchanged on any of them.
//
//   append    - make the record durable; with LazyLog it is *not* yet bound to a
//               position (returns only a durability flag).
//   read      - records at positions [from, from+len); enforced to be the final,
//               linearizable binding before it is served.
//   checkTail - number of durable records in the log.
//   trim      - garbage-collect positions below `index`.
//
// All calls are asynchronous (the simulator is event-driven); completion callbacks fire
// on the simulated event loop.
#ifndef SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
#define SRC_LAZYLOG_SHARED_LOG_CLIENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

class SharedLogClient {
 public:
  // append: `durable` is true once the record is safely stored (LazyLog semantics: the
  // position is assigned later; conventional logs have it bound already).
  using AppendCallback = std::function<void(bool durable)>;
  // read: positioned records in ascending position order. No-op records (Erwin-st
  // client-failure resolutions) are delivered with no_op=true; applications skip them.
  using ReadCallback = std::function<void(Status, std::vector<PositionedRecord>)>;
  // checkTail: `durable` = number of durable records; `stable` = prefix already bound
  // to final positions (stable == durable in eager-ordering logs).
  using TailCallback = std::function<void(Status, LogPos durable, LogPos stable)>;
  using TrimCallback = std::function<void(Status)>;

  virtual ~SharedLogClient() = default;

  virtual void Append(std::string payload, AppendCallback cb) = 0;
  virtual void Read(LogPos from, uint64_t len, ReadCallback cb) = 0;
  virtual void CheckTail(TailCallback cb) = 0;
  virtual void Trim(LogPos index, TrimCallback cb) = 0;
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
