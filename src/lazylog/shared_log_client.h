// The shared-log client interface (the paper's Figure 2, extended with virtual logs).
// Erwin-m, Erwin-st, and the eager-ordering baselines (Corfu, Scalog, KafkaLite) all
// implement it, so the example applications and benches run unchanged on any of them.
//
// Applications talk to *logs*, not to the client object: `Open(name)` resolves a named
// virtual log ("phylog") to a LogHandle, and `log()` returns the default handle — the
// physical log itself, which preserves single-log behaviour exactly. All data-path
// operations (Append / Read / CheckTail / ReadNext / ReadTag / Trim) live on the
// handle:
//
//   append    - make the record durable; with LazyLog it is *not* yet bound to a
//               position (returns only a durability flag).
//   read      - records at positions [from, from+len) of *this log's* position space;
//               enforced to be the final, linearizable binding before it is served.
//   checkTail - number of durable records in this log.
//   trim      - garbage-collect positions below `index` (default log only).
//
// A named log's position space is dense and private to it: position i of phylog L is
// the i-th record of L in the shared total order (the rank in the index tier's per-log
// position list). ReadNext/ReadTag cursors stay in the shared substrate's global
// position space for every log — streams are an access path over the total order.
//
// All calls are asynchronous (the simulator is event-driven); completion callbacks fire
// on the simulated event loop.
#ifndef SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
#define SRC_LAZYLOG_SHARED_LOG_CLIENT_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/params.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/seq/seq_messages.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

class LogHandle;

// Jittered exponential backoff for client config re-resolution (STALE_VIEW / sealed /
// unreachable-leader retries). Pure so tests can assert the spread: `attempt` doubles
// the base up to a cap, and `jitter01` (uniform in [0, 1)) scatters concurrent clients
// so a view change does not produce a thundering herd of simultaneous probes.
inline uint64_t RetryBackoffNs(uint32_t attempt, double jitter01) {
  const uint64_t base =
      std::min<uint64_t>(8 * kMs, (250 * kUs) << std::min<uint32_t>(attempt, 5u));
  return base / 2 + static_cast<uint64_t>(static_cast<double>(base / 2) * jitter01);
}

// Jittered backoff for admission-control refusals, much shorter than RetryBackoffNs.
// A rejection is served in microseconds (before the sequencer's CPU charge), and the
// gate opens and closes in cycles a few hundred microseconds long as the ring drains;
// retries must return within one cycle or the freed slots sit idle on a core that has
// work waiting — client backoff becomes server idle time. The attempt still doubles
// the base so persistent overload thins the retry herd instead of hammering the gate.
inline uint64_t OverloadBackoffNs(uint32_t attempt, double jitter01) {
  const uint64_t base =
      std::min<uint64_t>(1 * kMs, (50 * kUs) << std::min<uint32_t>(attempt, 4u));
  return base / 2 + static_cast<uint64_t>(static_cast<double>(base / 2) * jitter01);
}

// Client-side read-path counters (replica routing, request coalescing, tail caching,
// readahead). Every SharedLogClient owns a set; the Erwin clients drive the full
// machinery, the eager baselines populate the subset that applies to them.
struct ReadPathStats {
  uint64_t routed_reads = 0;      // stable sub-reads sent through the replica router
  uint64_t backup_routed = 0;     // of those, picks that landed on a non-primary replica
  uint64_t primary_reads = 0;     // sub-reads pinned to the primary (above-stable / mode 0)
  uint64_t coalesced_batches = 0; // multi-range RPCs issued
  uint64_t coalesced_subs = 0;    // sub-reads folded into those RPCs
  uint64_t chunk_rpcs = 0;        // extra RPCs from splitting large ranges into chunks
  uint64_t clipped_resends = 0;   // clipped/failed sub-reads re-issued to the primary
  uint64_t tail_cache_hits = 0;   // CheckTail-equivalents answered from the tail cache
  uint64_t readahead_hits = 0;    // records served from the readahead cache
  uint64_t readahead_fetched = 0; // records speculatively prefetched
};

struct ReadPathStatsSnapshot {
  ReadPathStats counters;
  StatsFields Fields() const {
    return {
        {"routed_reads", static_cast<double>(counters.routed_reads)},
        {"backup_routed", static_cast<double>(counters.backup_routed)},
        {"primary_reads", static_cast<double>(counters.primary_reads)},
        {"coalesced_batches", static_cast<double>(counters.coalesced_batches)},
        {"coalesced_subs", static_cast<double>(counters.coalesced_subs)},
        {"chunk_rpcs", static_cast<double>(counters.chunk_rpcs)},
        {"clipped_resends", static_cast<double>(counters.clipped_resends)},
        {"tail_cache_hits", static_cast<double>(counters.tail_cache_hits)},
        {"readahead_hits", static_cast<double>(counters.readahead_hits)},
        {"readahead_fetched", static_cast<double>(counters.readahead_fetched)},
    };
  }
};

// Per-append options. The single Append entry point takes this instead of the old
// tagged/untagged overload pair; future per-append knobs slot in here without touching
// every implementation again. `log` is normally stamped by the LogHandle the append
// goes through.
struct AppendOptions {
  StreamTag tag = kNoTag;
  LogId log = kDefaultLog;
};

class SharedLogClient {
 public:
  // append: OK once the record is safely stored (LazyLog semantics: the position is
  // assigned later; conventional logs have it bound already). Error codes distinguish
  // why an append was given up on: kSealed / kStaleView (reconfiguration fenced the
  // view the client was writing into), kTimeout (no response within the retry budget),
  // kRejected (Erwin-st data arrived after the no-op decision — the append is lost),
  // kOverloaded (admission control shed the append and the in-place backoff budget ran
  // out — never returned for an append that was already acked; safe to retry later),
  // kQuotaExceeded (this log's per-tenant rate limit refused the append — the cluster
  // is healthy, the tenant is over its quota; retry after its bucket refills),
  // kInvalidArgument (append to a deleted log), or kUnavailable / kInternal for
  // generic failure.
  using AppendCallback = std::function<void(Status)>;
  // read: positioned records in ascending position order. For the default log the
  // positions are global; for a named log they are the log's own dense positions.
  // No-op records (Erwin-st client-failure resolutions) are delivered with no_op=true
  // on the default log; named-log reads never surface them (they own no rank).
  using ReadCallback = std::function<void(Status, std::vector<PositionedRecord>)>;
  // checkTail: `durable` = number of durable records; `stable` = prefix already bound
  // to final positions (stable == durable in eager-ordering logs).
  using TailCallback = std::function<void(Status, LogPos durable, LogPos stable)>;
  using TrimCallback = std::function<void(Status)>;
  // readNext: the stream-tag selective read. `records` are the records of the
  // requested stream in [from, next_from), in ascending position order — an exact,
  // gap-free projection of the global order over that range: every record of the
  // stream in [from, next_from) is included, none from outside it. `next_from` is the
  // resume cursor; next_from == from means no progress was possible yet (the index is
  // still catching up, or the stream has no stable records past `from`).
  using ReadNextCallback =
      std::function<void(Status, std::vector<PositionedRecord> records, LogPos next_from)>;
  // open: resolves a log name against the cluster's log registry. The handle is a
  // value; it stays valid as long as the client it came from.
  using OpenCallback = std::function<void(Status, LogHandle)>;

  virtual ~SharedLogClient() = default;

  // View that served the most recent successful checkTail. 0 where views do not apply
  // (the eager baselines run a single static configuration). The chaos oracles use this
  // to scope per-client durable-tail monotonicity per view: the durable tail may shrink
  // across a view change (an uncommitted suffix is legally dropped), never within one.
  virtual ViewId last_tail_view() const { return 0; }

  // Resolves `name` in the installed log registry (falling back to the
  // implementation's control-plane lookup) and hands back a bound LogHandle.
  void Open(const std::string& name, OpenCallback cb);

  // The default handle: the physical log itself. Single-log callers route everything
  // through this and observe exactly the pre-virtual-log behaviour (byte-identical
  // wire frames for untagged appends).
  LogHandle log();

  // Handle for an already-known log id (tests and benches that created the log through
  // the cluster/controller and hold its id).
  LogHandle handle(LogId id, std::string name = "");

  // Installs the registry snapshot used by Open() and quota-free name resolution.
  // Clients wired through a control plane refresh this from "/logs/config" on demand.
  void InstallLogRegistry(std::vector<LogRegistryEntry> entries) {
    log_registry_ = std::move(entries);
  }
  const std::vector<LogRegistryEntry>& log_registry() const { return log_registry_; }

  // Last tail piggybacked on a read reply or learned from CheckTail, if still within
  // client_read.tail_cache_ttl_ns. Pollers (PeriodicTailReader) consult this before
  // paying for a CheckTail round trip. Default: nothing cached.
  virtual bool CachedTail(LogPos* durable, LogPos* stable) { return false; }

  // Point-in-time copy of the client-side read-path counters (bench JSON / tests).
  ReadPathStatsSnapshot ReadPathSnapshot() const { return {read_stats_}; }

 protected:
  friend class LogHandle;

  // --- the per-implementation surface (reached through LogHandle) --------------------
  // The payload is a refcounted Buf handle; implementations thread it through to the
  // wire without copying the bytes. std::string arguments convert implicitly. The
  // options carry the stream tag and owning phylog (kNoTag / kDefaultLog appends are
  // byte-identical to the pre-options wire format).
  virtual void Append(const AppendOptions& options, Buf payload, AppendCallback cb) = 0;
  // Substrate (global position space) operations; the default log's data path.
  virtual void Read(LogPos from, uint64_t len, ReadCallback cb) = 0;
  virtual void CheckTail(TailCallback cb) = 0;
  virtual void Trim(LogPos index, TrimCallback cb) = 0;

  // Selective read: up to `max` records of stream (log, tag) at or after global
  // position `from`. The default scans — CheckTail, then ranged Reads filtered by
  // (log, tag) — which works on any implementation whose records carry the fields
  // (the eager baselines included) but costs reads proportional to the whole log. The
  // Erwin clients override it with an index-node position lookup + shard-direct
  // fetches.
  virtual void ReadNext(LogId log, StreamTag tag, LogPos from, uint32_t max,
                        ReadNextCallback cb) {
    ScanReadNext(log, tag, from, max, std::move(cb));
  }

  // Point read of one record of stream (log, tag) at global position `pos`. Served by
  // the plain read path; fails with kInvalidArgument if the record at `pos` belongs to
  // a different stream or log (or is untagged/no-op filler).
  virtual void ReadTag(LogId log, StreamTag tag, LogPos pos, ReadCallback cb);

  // Named-log ranged read: records at the log's own positions [from, from+len). The
  // default scans the stable prefix of the shared log and ranks log-owned records;
  // the Erwin clients override it with an index-tier rank lookup. Incompatible with
  // Trim (trimming shifts ranks); deployments that trim keep per-log read state in
  // the app, like the paper's single-log apps do.
  virtual void ReadLog(LogId log, LogPos from, uint64_t len, ReadCallback cb);

  // Named-log tail: durable/stable counts of this log's records. The scan default
  // only sees the stable prefix, so it reports durable == stable == stable-rank-count;
  // the Erwin clients override it with the leader's per-log cursors.
  virtual void CheckTailOfLog(LogId log, TailCallback cb);

  // The scan fallback behind the default ReadNext; overrides use it when the index
  // tier is unreachable or absent.
  void ScanReadNext(LogId log, StreamTag tag, LogPos from, uint32_t max,
                    ReadNextCallback cb);
  // Scan fallbacks behind the named-log defaults (also used by the Erwin clients when
  // no index node is live).
  void ScanReadLog(LogId log, LogPos from, uint64_t len, ReadCallback cb);
  void ScanCheckTailOfLog(LogId log, TailCallback cb);

  // Fallback name resolution when the installed registry has no entry: the Erwin
  // clients fetch "/logs/config" from ZooKeeper here; the default fails.
  virtual void ResolveLog(const std::string& name,
                          std::function<void(Status, LogId)> cb) {
    cb(Status::InvalidArgument("unknown log: " + name), kDefaultLog);
  }

  // Mutated by the implementation's read path (and the read_path.h helpers, which hold
  // a pointer to it).
  ReadPathStats read_stats_;

 private:
  struct ScanState;
  void ScanStep(std::shared_ptr<ScanState> st);
  struct LogScanState;
  void LogScanStep(std::shared_ptr<LogScanState> st);

  std::vector<LogRegistryEntry> log_registry_;
};

// A bound (client, log) pair: the application-facing face of one virtual log. Cheap
// value type — copy freely, but never outlive the client it came from. The default
// handle (id kDefaultLog) is the physical log; named handles project their own dense
// position space out of the shared order.
class LogHandle {
 public:
  LogHandle() = default;
  LogHandle(SharedLogClient* client, LogId id, std::string name)
      : client_(client), id_(id), name_(std::move(name)) {}

  bool valid() const { return client_ != nullptr; }
  LogId id() const { return id_; }
  const std::string& name() const { return name_; }
  SharedLogClient* client() const { return client_; }

  // Appends to this log. The options' `log` field is stamped with this handle's id;
  // the tag passes through (streams compose with virtual logs).
  void Append(AppendOptions options, Buf payload, SharedLogClient::AppendCallback cb) {
    options.log = id_;
    client_->Append(options, std::move(payload), std::move(cb));
  }
  void Append(Buf payload, SharedLogClient::AppendCallback cb) {
    Append(AppendOptions{}, std::move(payload), std::move(cb));
  }
  void Append(StreamTag tag, Buf payload, SharedLogClient::AppendCallback cb) {
    Append(AppendOptions{.tag = tag}, std::move(payload), std::move(cb));
  }

  // Records at this log's positions [from, from+len).
  void Read(LogPos from, uint64_t len, SharedLogClient::ReadCallback cb) {
    if (id_ == kDefaultLog) {
      client_->Read(from, len, std::move(cb));
    } else {
      client_->ReadLog(id_, from, len, std::move(cb));
    }
  }

  void CheckTail(SharedLogClient::TailCallback cb) {
    if (id_ == kDefaultLog) {
      client_->CheckTail(std::move(cb));
    } else {
      client_->CheckTailOfLog(id_, std::move(cb));
    }
  }

  // Selective read over this log's stream `tag`; cursors are global positions on
  // every log (see the header comment).
  void ReadNext(StreamTag tag, LogPos from, uint32_t max,
                SharedLogClient::ReadNextCallback cb) {
    client_->ReadNext(id_, tag, from, max, std::move(cb));
  }

  void ReadTag(StreamTag tag, LogPos pos, SharedLogClient::ReadCallback cb) {
    client_->ReadTag(id_, tag, pos, std::move(cb));
  }

  // Garbage-collection below `index`. Defined for the default log only: a named log's
  // rank space would shift under substrate truncation (per-tenant retention is the
  // ROADMAP's cold-tiering item).
  void Trim(LogPos index, SharedLogClient::TrimCallback cb) {
    if (id_ != kDefaultLog) {
      cb(Status::InvalidArgument("per-log trim not supported"));
      return;
    }
    client_->Trim(index, std::move(cb));
  }

 private:
  SharedLogClient* client_ = nullptr;
  LogId id_ = kDefaultLog;
  std::string name_;
};

inline LogHandle SharedLogClient::log() { return LogHandle(this, kDefaultLog, ""); }

inline LogHandle SharedLogClient::handle(LogId id, std::string name) {
  return LogHandle(this, id, std::move(name));
}

inline void SharedLogClient::Open(const std::string& name, OpenCallback cb) {
  for (const LogRegistryEntry& entry : log_registry_) {
    if (entry.name == name && !entry.deleted) {
      cb(Status::Ok(), LogHandle(this, entry.id, name));
      return;
    }
  }
  ResolveLog(name, [this, name, cb = std::move(cb)](Status s, LogId id) {
    if (!s.ok()) {
      cb(std::move(s), LogHandle());
      return;
    }
    cb(Status::Ok(), LogHandle(this, id, name));
  });
}

// --- scan fallbacks --------------------------------------------------------------------

struct SharedLogClient::ScanState {
  LogId log = kDefaultLog;
  StreamTag tag = kNoTag;
  LogPos cursor = 0;    // next unscanned position
  LogPos stable = 0;    // scan ceiling (stable prefix at CheckTail time)
  uint32_t max = 0;
  std::vector<PositionedRecord> out;
  ReadNextCallback cb;
};

inline void SharedLogClient::ScanReadNext(LogId log, StreamTag tag, LogPos from,
                                          uint32_t max, ReadNextCallback cb) {
  if (tag == kNoTag) {
    cb(Status::InvalidArgument("read-next requires a stream tag"), {}, from);
    return;
  }
  if (max == 0) {
    cb(Status::Ok(), {}, from);
    return;
  }
  auto st = std::make_shared<ScanState>();
  st->log = log;
  st->tag = tag;
  st->cursor = from;
  st->max = max;
  st->cb = std::move(cb);
  CheckTail([this, st](Status s, LogPos, LogPos stable) {
    if (!s.ok()) {
      st->cb(std::move(s), {}, st->cursor);
      return;
    }
    st->stable = stable;
    ScanStep(std::move(st));
  });
}

inline void SharedLogClient::ScanStep(std::shared_ptr<ScanState> st) {
  constexpr uint64_t kScanChunk = 64;
  if (st->cursor >= st->stable || st->out.size() >= st->max) {
    st->cb(Status::Ok(), std::move(st->out), st->cursor);
    return;
  }
  const uint64_t len = std::min<uint64_t>(kScanChunk, st->stable - st->cursor);
  const LogPos chunk_start = st->cursor;
  Read(chunk_start, len,
       [this, st, chunk_start, len](Status s, std::vector<PositionedRecord> recs) {
         if (!s.ok()) {
           st->cb(std::move(s), {}, chunk_start);
           return;
         }
         bool truncated = false;
         for (PositionedRecord& pr : recs) {
           if (st->out.size() >= st->max) {
             // max reached mid-chunk: the cursor stops after the last consumed
             // position, so the uninspected tail is not claimed as covered.
             truncated = true;
             break;
           }
           st->cursor = pr.pos + 1;
           if (!pr.record.no_op && pr.record.tag == st->tag && pr.record.log == st->log) {
             st->out.push_back(std::move(pr));
           }
         }
         if (!truncated) {
           st->cursor = chunk_start + len;  // whole chunk inspected
         }
         ScanStep(std::move(st));
       });
}

inline void SharedLogClient::ReadTag(LogId log, StreamTag tag, LogPos pos, ReadCallback cb) {
  if (tag == kNoTag) {
    cb(Status::InvalidArgument("read-tag requires a stream tag"), {});
    return;
  }
  Read(pos, 1,
       [log, tag, pos, cb = std::move(cb)](Status s, std::vector<PositionedRecord> recs) {
         if (!s.ok()) {
           cb(std::move(s), {});
           return;
         }
         if (recs.size() != 1 || recs[0].pos != pos) {
           cb(Status::Internal("point read returned wrong record"), {});
           return;
         }
         if (recs[0].record.no_op || recs[0].record.tag != tag ||
             recs[0].record.log != log) {
           cb(Status::InvalidArgument("record at position belongs to a different stream"),
              {});
           return;
         }
         cb(Status::Ok(), std::move(recs));
       });
}

// Shared machinery behind the named-log scan defaults: walk the stable prefix of the
// substrate, rank this log's (non-no-op) records, and either collect a rank window or
// just count. PositionedRecords are re-labelled with per-log positions (ranks).
struct SharedLogClient::LogScanState {
  LogId log = kDefaultLog;
  LogPos cursor = 0;   // next unscanned global position
  LogPos stable = 0;   // scan ceiling
  LogPos rank = 0;     // per-log position of the next log-owned record found
  LogPos from = 0;     // first wanted rank (read mode)
  uint64_t want = 0;   // ranks wanted (read mode; 0 = count-only)
  std::vector<PositionedRecord> out;
  ReadCallback read_cb;
  TailCallback tail_cb;
};

inline void SharedLogClient::ScanReadLog(LogId log, LogPos from, uint64_t len,
                                         ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  auto st = std::make_shared<LogScanState>();
  st->log = log;
  st->from = from;
  st->want = len;
  st->read_cb = std::move(cb);
  CheckTail([this, st](Status s, LogPos, LogPos stable) {
    if (!s.ok()) {
      st->read_cb(std::move(s), {});
      return;
    }
    st->stable = stable;
    LogScanStep(std::move(st));
  });
}

inline void SharedLogClient::ScanCheckTailOfLog(LogId log, TailCallback cb) {
  auto st = std::make_shared<LogScanState>();
  st->log = log;
  st->tail_cb = std::move(cb);
  CheckTail([this, st](Status s, LogPos, LogPos stable) {
    if (!s.ok()) {
      st->tail_cb(std::move(s), 0, 0);
      return;
    }
    st->stable = stable;
    LogScanStep(std::move(st));
  });
}

inline void SharedLogClient::LogScanStep(std::shared_ptr<LogScanState> st) {
  constexpr uint64_t kScanChunk = 64;
  const bool read_mode = st->want > 0;
  const bool done_reading = read_mode && st->out.size() >= st->want;
  if (st->cursor >= st->stable || done_reading) {
    if (read_mode) {
      st->read_cb(Status::Ok(), std::move(st->out));
    } else {
      // The scan only sees the stable prefix, so durable == stable == the rank count.
      st->tail_cb(Status::Ok(), st->rank, st->rank);
    }
    return;
  }
  const uint64_t len = std::min<uint64_t>(kScanChunk, st->stable - st->cursor);
  const LogPos chunk_start = st->cursor;
  Read(chunk_start, len,
       [this, st, chunk_start, len](Status s, std::vector<PositionedRecord> recs) {
         if (!s.ok()) {
           if (st->want > 0) {
             st->read_cb(std::move(s), {});
           } else {
             st->tail_cb(std::move(s), 0, 0);
           }
           return;
         }
         for (PositionedRecord& pr : recs) {
           if (!pr.record.no_op && pr.record.log == st->log) {
             if (st->want > 0 && st->rank >= st->from && st->out.size() < st->want) {
               pr.pos = st->rank;  // re-label with the per-log position
               st->out.push_back(std::move(pr));
             }
             ++st->rank;
           }
         }
         st->cursor = chunk_start + len;
         LogScanStep(std::move(st));
       });
}

inline void SharedLogClient::ReadLog(LogId log, LogPos from, uint64_t len,
                                     ReadCallback cb) {
  ScanReadLog(log, from, len, std::move(cb));
}

inline void SharedLogClient::CheckTailOfLog(LogId log, TailCallback cb) {
  ScanCheckTailOfLog(log, std::move(cb));
}

}  // namespace lazylog

#endif  // SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
