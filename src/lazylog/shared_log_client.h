// The shared-log client interface (the paper's Figure 2). Erwin-m, Erwin-st, and the
// eager-ordering baselines (Corfu, Scalog, KafkaLite) all implement it, so the example
// applications and benches run unchanged on any of them.
//
//   append    - make the record durable; with LazyLog it is *not* yet bound to a
//               position (returns only a durability flag).
//   read      - records at positions [from, from+len); enforced to be the final,
//               linearizable binding before it is served.
//   checkTail - number of durable records in the log.
//   trim      - garbage-collect positions below `index`.
//
// All calls are asynchronous (the simulator is event-driven); completion callbacks fire
// on the simulated event loop.
#ifndef SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
#define SRC_LAZYLOG_SHARED_LOG_CLIENT_H_

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "src/common/params.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

// Jittered exponential backoff for client config re-resolution (STALE_VIEW / sealed /
// unreachable-leader retries). Pure so tests can assert the spread: `attempt` doubles
// the base up to a cap, and `jitter01` (uniform in [0, 1)) scatters concurrent clients
// so a view change does not produce a thundering herd of simultaneous probes.
inline uint64_t RetryBackoffNs(uint32_t attempt, double jitter01) {
  const uint64_t base =
      std::min<uint64_t>(8 * kMs, (250 * kUs) << std::min<uint32_t>(attempt, 5u));
  return base / 2 + static_cast<uint64_t>(static_cast<double>(base / 2) * jitter01);
}

// Jittered backoff for admission-control refusals, much shorter than RetryBackoffNs.
// A rejection is served in microseconds (before the sequencer's CPU charge), and the
// gate opens and closes in cycles a few hundred microseconds long as the ring drains;
// retries must return within one cycle or the freed slots sit idle on a core that has
// work waiting — client backoff becomes server idle time. The attempt still doubles
// the base so persistent overload thins the retry herd instead of hammering the gate.
inline uint64_t OverloadBackoffNs(uint32_t attempt, double jitter01) {
  const uint64_t base =
      std::min<uint64_t>(1 * kMs, (50 * kUs) << std::min<uint32_t>(attempt, 4u));
  return base / 2 + static_cast<uint64_t>(static_cast<double>(base / 2) * jitter01);
}

class SharedLogClient {
 public:
  // append: OK once the record is safely stored (LazyLog semantics: the position is
  // assigned later; conventional logs have it bound already). Error codes distinguish
  // why an append was given up on: kSealed / kStaleView (reconfiguration fenced the
  // view the client was writing into), kTimeout (no response within the retry budget),
  // kRejected (Erwin-st data arrived after the no-op decision — the append is lost),
  // kOverloaded (admission control shed the append and the in-place backoff budget ran
  // out — never returned for an append that was already acked; safe to retry later),
  // or kUnavailable / kInternal for generic failure.
  using AppendCallback = std::function<void(Status)>;
  // read: positioned records in ascending position order. No-op records (Erwin-st
  // client-failure resolutions) are delivered with no_op=true; applications skip them.
  using ReadCallback = std::function<void(Status, std::vector<PositionedRecord>)>;
  // checkTail: `durable` = number of durable records; `stable` = prefix already bound
  // to final positions (stable == durable in eager-ordering logs).
  using TailCallback = std::function<void(Status, LogPos durable, LogPos stable)>;
  using TrimCallback = std::function<void(Status)>;

  virtual ~SharedLogClient() = default;

  // View that served the most recent successful checkTail. 0 where views do not apply
  // (the eager baselines run a single static configuration). The chaos oracles use this
  // to scope per-client durable-tail monotonicity per view: the durable tail may shrink
  // across a view change (an uncommitted suffix is legally dropped), never within one.
  virtual ViewId last_tail_view() const { return 0; }

  // The payload is a refcounted Buf handle; implementations thread it through to the
  // wire without copying the bytes. std::string arguments convert implicitly.
  virtual void Append(Buf payload, AppendCallback cb) = 0;
  virtual void Read(LogPos from, uint64_t len, ReadCallback cb) = 0;
  virtual void CheckTail(TailCallback cb) = 0;
  virtual void Trim(LogPos index, TrimCallback cb) = 0;
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_SHARED_LOG_CLIENT_H_
