#include "src/lazylog/erwin_st_client.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/control/zookeeper.h"
#include "src/lazylog/index_read.h"

namespace lazylog {

ErwinStClient::ErwinStClient(Network* net, const SimParams& params, ClusterView view,
                             ClientId client_id)
    : endpoint_(net),
      params_(params),
      view_(std::move(view)),
      client_id_(client_id),
      rng_(params.seed ^ (0xc11e47a5ULL + client_id)),
      router_(&params_, &rng_, client_id, &read_stats_),
      coalescer_(&endpoint_, &params_, &router_, &tails_, &read_stats_) {
  rr_cursor_ = client_id;  // decorrelate shard choice across clients
  InstallLogRegistry(view_.logs);
}

void ErwinStClient::AddShard(std::vector<NodeId> replicas) {
  view_.shards.push_back(std::move(replicas));
}

// --- append (§5.1): data to the shard replicas + metadata to the sequencing replicas,
// all in parallel, 1 RTT -------------------------------------------------------------------

void ErwinStClient::Append(const AppendOptions& options, Buf payload, AppendCallback cb) {
  if (QuotaMuted(options.log, cb)) {
    return;
  }
  auto p = std::make_shared<PendingAppend>();
  p->id = RecordId{client_id_, next_request_id_++};
  p->payload = std::move(payload);
  p->tag = options.tag;
  p->log = options.log;
  p->shard = static_cast<ShardId>(rr_cursor_++ % view_.num_shards());
  p->cb = std::move(cb);
  SendAppend(std::move(p));
}

void ErwinStClient::SendAppend(std::shared_ptr<PendingAppend> p) {
  p->attempts++;
  const auto& shard_replicas = view_.shards[p->shard];
  // Once every data replica has acked the payload, resends skip the data writes: an
  // overload refusal is a metadata-tier event, and re-sending the (already durable)
  // payload would multiply shard disk load by the retry count exactly when the system
  // is saturated. The shard dup-filters stale re-puts anyway, so this is purely a
  // load optimization, not a correctness hinge.
  const size_t n_data = p->data_durable ? 0 : shard_replicas.size();
  const size_t n_meta = view_.seq_config.size();
  auto gather =
      Gather::Create(n_data + n_meta, [this, p, n_data](const std::vector<Status>& ss) {
        if (n_data > 0 && std::all_of(ss.begin(), ss.begin() + n_data,
                                      [](const Status& s) { return s.ok(); })) {
          p->data_durable = true;
        }
        const bool all_ok =
            std::all_of(ss.begin(), ss.end(), [](const Status& s) { return s.ok(); });
        if (all_ok) {
          p->cb(Status::Ok());
          return;
        }
        // A Rejected data write means the shard already no-op'ed this id after an
        // earlier attempt timed out; the append is lost and must not be retried
        // under the same id.
        for (const Status& s : ss) {
          if (s.code() == StatusCode::kRejected) {
            p->cb(s);
            return;
          }
        }
        // A refused metadata append (admission control): the sequencing tier is
        // shedding load, not reconfiguring — retry in place with backoff. The leader's
        // verdict (slot n_data: seq_config[0]) decides the retry budget; once the
        // leader admits, it dup-acks every resend, so the flag is sticky across
        // attempts without storing it.
        for (const Status& s : ss) {
          if (s.code() == StatusCode::kOverloaded) {
            EnqueueOverloadRetry(p, /*leader_admitted=*/ss[n_data].ok());
            return;
          }
        }
        // Leader-only verdicts on the virtual-log control state (the leader's slot is
        // n_data): a quota refusal gets the short in-place backoff; a deleted-log
        // refusal is permanent and surfaces immediately.
        if (ss[n_data].code() == StatusCode::kQuotaExceeded) {
          MuteQuota(p->log);
          EnqueueQuotaRetry(std::move(p));
          return;
        }
        if (ss[n_data].code() == StatusCode::kInvalidArgument) {
          p->cb(ss[n_data]);
          return;
        }
        for (const Status& s : ss) {
          if (!s.ok()) {
            p->last_error = s;
            break;
          }
        }
        EnqueueRetry(p);
      });
  // Data writes to every replica of the chosen shard (no coordination, §5.1). The
  // request is encoded once; replicas share the frame and the payload attachment.
  if (n_data > 0) {
    ShardPutDataReq data{p->id, p->payload, p->tag, p->log};
    Encoder denc;
    data.Encode(denc);
    const std::vector<Buf> datts = denc.TakeAtts();
    const Buf dbody = denc.TakeBuf();
    for (size_t i = 0; i < n_data; ++i) {
      endpoint_.Call(shard_replicas[i], kShardPutData, dbody, gather->Slot(i),
                     params_.client_append_timeout_ns, datts);
    }
  }
  // Metadata to every sequencing replica, same RTT.
  SeqAppendReq meta;
  meta.view = view_.view;
  meta.id = p->id;
  meta.target_shard = p->shard;
  meta.is_meta = true;
  // The record's tag rides the data write; the log id must also reach the sequencing
  // leader (quota gate + per-log cursors). Flag-gated: default-log frames unchanged.
  meta.log = p->log;
  Encoder menc;
  meta.Encode(menc);
  const Buf mbody = menc.TakeBuf();
  for (size_t i = 0; i < n_meta; ++i) {
    endpoint_.Call(view_.seq_config[i], kSeqAppendMeta, mbody, gather->Slot(n_data + i),
                   params_.client_append_timeout_ns);
  }
}

void ErwinStClient::EnqueueRetry(std::shared_ptr<PendingAppend> p) {
  if (p->attempts > 50) {
    p->cb(p->last_error.ok() ? Status::Timeout("append retries exhausted") : p->last_error);
    return;
  }
  retry_queue_.push_back(std::move(p));
  if (!resolving_config_) {
    resolving_config_ = true;
    ResolveConfig();
  }
}

// See ErwinMClient::EnqueueOverloadRetry: overload is shed in place (no config probe —
// a probe is CPU-free and would succeed instantly, turning backoff into a retry storm),
// with a small budget so saturation surfaces as kOverloaded instead of queueing forever.
// The data writes of earlier attempts are harmless orphans if the budget runs out: the
// shard scrubs unmatched data by age (st_orphan_scrub_age_ns), and replicas that did
// admit the metadata dup-filter the resend, so the id never binds twice.
void ErwinStClient::EnqueueOverloadRetry(std::shared_ptr<PendingAppend> p,
                                         bool leader_admitted) {
  p->overload_attempts++;
  // A leader-refused append holds no ordering resources: shed it after the small
  // budget so saturation surfaces fast. A leader-admitted one is already in the
  // ordering pipeline — a follower's gate refused it, and abandoning it now would
  // waste the ordered slot — so it keeps retrying (the followers' retry-priority band
  // and shed-entry scrub guarantee progress), with a hard cap diverting pathological
  // cases to the slow config-probing path instead of looping forever.
  if (!leader_admitted &&
      p->overload_attempts > static_cast<int>(params_.client_overload_retry_limit)) {
    p->cb(Status::Overloaded("append shed after overload retries"));
    return;
  }
  if (p->overload_attempts > 64) {
    EnqueueRetry(p);
    return;
  }
  p->last_error = Status::Overloaded();
  // Computed before the capture moves from p (argument evaluation is unsequenced).
  const uint64_t backoff =
      OverloadBackoffNs(static_cast<uint32_t>(p->overload_attempts), rng_.NextDouble());
  endpoint_.loop()->Schedule(backoff,
                             [this, p = std::move(p)]() mutable { SendAppend(std::move(p)); });
}

// See ErwinMClient::QuotaMuted: shed fresh appends locally while a recent leader
// refusal says the log's bucket is empty; in-flight retries bypass the mute.
bool ErwinStClient::QuotaMuted(LogId log, AppendCallback& cb) {
  if (log == kDefaultLog || params_.client_quota_mute_ns == 0) {
    return false;
  }
  auto it = quota_muted_until_.find(log);
  if (it == quota_muted_until_.end() || endpoint_.loop()->Now() >= it->second) {
    return false;
  }
  endpoint_.loop()->Schedule(0, [cb = std::move(cb)]() {
    cb(Status::QuotaExceeded("append shed by tenant quota (client-side)"));
  });
  return true;
}

void ErwinStClient::MuteQuota(LogId log) {
  if (log == kDefaultLog || params_.client_quota_mute_ns == 0) {
    return;
  }
  quota_muted_until_[log] = endpoint_.loop()->Now() + params_.client_quota_mute_ns;
}

// See ErwinMClient::EnqueueQuotaRetry: one refill period away, but surfaces
// kQuotaExceeded — not kOverloaded — so the application can tell throttling from
// congestion. Earlier attempts' data writes are harmless orphans (age-scrubbed).
void ErwinStClient::EnqueueQuotaRetry(std::shared_ptr<PendingAppend> p) {
  p->overload_attempts++;
  if (p->overload_attempts > static_cast<int>(params_.client_overload_retry_limit)) {
    p->cb(Status::QuotaExceeded("append shed by tenant quota"));
    return;
  }
  p->last_error = Status::QuotaExceeded();
  const uint64_t backoff =
      OverloadBackoffNs(static_cast<uint32_t>(p->overload_attempts), rng_.NextDouble());
  endpoint_.loop()->Schedule(backoff,
                             [this, p = std::move(p)]() mutable { SendAppend(std::move(p)); });
}

void ErwinStClient::ProbeThen(std::function<void()> then, int attempt) {
  if (attempt > 1000) {
    then();
    return;
  }
  const NodeId target = view_.seq_config[probe_cursor_++ % view_.seq_config.size()];
  endpoint_.Call(
      target, kSeqGetConfig, "",
      [this, then = std::move(then), attempt](Status s, Decoder d) mutable {
        SeqConfigResp resp;
        bool usable = false;
        if (s.ok()) {
          // Only adopt views at least as new as ours: a partitioned straggler still in
          // an older (fenced-off) view must not drag the client backwards.
          usable = resp.Decode(d) && !resp.sealed && !resp.config.empty() &&
                   resp.view >= view_.view;
        }
        if (!usable) {
          endpoint_.loop()->Schedule(
              RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
              [this, then = std::move(then), attempt]() mutable {
                ProbeThen(std::move(then), attempt + 1);
              });
          return;
        }
        view_.view = resp.view;
        view_.seq_config.assign(resp.config.begin(), resp.config.end());
        then();
      },
      2 * kMs);
}

void ErwinStClient::RefreshShardConfig(std::function<void()> then) {
  if (view_.zk == kInvalidNode) {
    then();
    return;
  }
  ZkClient zk(&endpoint_, view_.zk);
  zk.GetData(
      "/shards/config",
      [this, then = std::move(then)](Status s, std::string data, uint64_t) mutable {
        if (s.ok()) {
          uint64_t epoch = 0;
          std::vector<std::vector<NodeId>> shards;
          if (DecodeShardConfig(data, &epoch, &shards) && epoch > view_.shard_epoch) {
            view_.shard_epoch = epoch;
            // Runtime-added shards may not be in ZK yet; keep any tail beyond the
            // controller's matrix.
            for (size_t s2 = shards.size(); s2 < view_.shards.size(); ++s2) {
              shards.push_back(view_.shards[s2]);
            }
            view_.shards = std::move(shards);
          }
        }
        then();
      },
      5 * kMs);
}

void ErwinStClient::ResolveConfig() {
  ProbeThen([this]() {
    // A failed data write may mean a replaced shard replica rather than a sequencing
    // view change; refresh both before resending.
    RefreshShardConfig([this]() {
      resolving_config_ = false;
      auto queued = std::move(retry_queue_);
      retry_queue_.clear();
      // Retries keep their record id and target shard: the first metadata write to
      // reach the ordering decides, and every layer filters duplicates.
      for (auto& p : queued) {
        SendAppend(std::move(p));
      }
    });
  });
}

// --- read (§5.3): resolve positions to shards via the cached map, then read ---------------

void ErwinStClient::Read(LogPos from, uint64_t len, ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  // Serve whatever contiguous prefix the readahead cache holds, fetch the rest.
  auto cached = std::make_shared<std::vector<PositionedRecord>>();
  const uint64_t hit = readahead_.TakePrefix(from, len, cached.get());
  read_stats_.readahead_hits += hit;
  if (hit == len) {
    endpoint_.loop()->Schedule(0, [cached, cb = std::move(cb)]() {
      cb(Status::Ok(), std::move(*cached));
    });
    MaybePrefetch(from + len);
    return;
  }
  ReadCallback wrapped = [this, from, len, cached, cb = std::move(cb)](
                             Status s, std::vector<PositionedRecord> recs) {
    if (!s.ok()) {
      cb(std::move(s), {});
      return;
    }
    if (cached->empty()) {
      cached->swap(recs);
    } else {
      for (PositionedRecord& pr : recs) {
        cached->push_back(std::move(pr));
      }
    }
    MaybePrefetch(from + len);
    cb(Status::Ok(), std::move(*cached));
  };
  auto rd = std::make_shared<PendingRead>(PendingRead{from + hit, len - hit, std::move(wrapped)});
  TryRead(std::move(rd));
}

void ErwinStClient::MaybePrefetch(LogPos next) {
  const auto& cr = params_.client_read;
  if (cr.readahead_records == 0 || readahead_inflight_ || !cache_enabled_) {
    return;
  }
  // Only the stable region is prefetched: those bindings are final, so cached entries
  // never need revalidation.
  const LogPos stable = tails_.stable();
  if (next >= stable || readahead_.Covers(next)) {
    return;
  }
  const uint32_t n =
      static_cast<uint32_t>(std::min<uint64_t>(cr.readahead_records, stable - next));
  readahead_inflight_ = true;
  read_stats_.readahead_fetched += n;
  auto rd = std::make_shared<PendingRead>(
      PendingRead{next, n, [this](Status s, std::vector<PositionedRecord> recs) {
                    readahead_inflight_ = false;
                    if (s.ok()) {
                      readahead_.Insert(
                          std::move(recs),
                          std::max<size_t>(4 * params_.client_read.readahead_records, 1024));
                    }
                  }});
  TryRead(std::move(rd));
}

void ErwinStClient::TryRead(std::shared_ptr<PendingRead> rd) {
  const LogPos needed_end = rd->from + rd->len;
  if (cache_enabled_ && posmap_.size() >= needed_end) {
    DoRead(std::move(rd));
    return;
  }
  FetchPosMap(needed_end, [this, rd]() {
    if (posmap_.size() >= rd->from + rd->len) {
      DoRead(rd);
      return;
    }
    // Positions not ordered yet: slow path — poll until the ordering catches up.
    endpoint_.loop()->Schedule(params_.posmap_poll_interval_ns, [this, rd]() { TryRead(rd); });
  });
}

void ErwinStClient::FetchPosMap(LogPos needed_end, std::function<void()> then) {
  // Bulk fetch with read-ahead; amortizes the mapping roundtrip over many reads (§5.3).
  const uint64_t readahead = std::max<uint64_t>(1, params_.client_read.posmap_readahead);
  ShardPosMapReq req;
  req.from = posmap_.size();
  const uint64_t want =
      needed_end > posmap_.size() ? needed_end - posmap_.size() : readahead;
  req.len = static_cast<uint32_t>(std::max<uint64_t>(want, readahead));
  posmap_fetches_++;
  // Shard 0 predates any runtime-added shard, so its metadata log covers all positions.
  // Every replica serves the map gated on its own stable-gp, so successive fetches
  // rotate across shard 0's replicas instead of pinning one.
  const auto& replicas = view_.shards[0];
  const NodeId target = replicas[(client_id_ + posmap_fetches_) % replicas.size()];
  endpoint_.CallMsg(target, kShardPosMap, req,
                    [this, then = std::move(then)](Status s, Decoder d) mutable {
                      if (s.ok()) {
                        ShardPosMapResp resp;
                        if (resp.Decode(d) && resp.from == posmap_.size()) {
                          for (uint64_t sid : resp.shard_ids) {
                            posmap_.push_back(static_cast<uint32_t>(sid));
                          }
                          // Every mapped position was stable at the serving replica, so
                          // the map length is a conservative tail sample.
                          tails_.Note(endpoint_.loop()->Now(), posmap_.size(),
                                      posmap_.size());
                        }
                        then();
                        return;
                      }
                      // The mapping server may have been replaced out from under us;
                      // refresh the shard membership before the caller's retry.
                      RefreshShardConfig(std::move(then));
                    },
                    params_.rpc_timeout_ns);
}

void ErwinStClient::DoRead(std::shared_ptr<PendingRead> rd) {
  struct MergeState {
    std::vector<PositionedRecord> all;
  };
  // Group the positions into per-shard runs in ONE pass. Each shard's positions within
  // the window form one contiguous run of its local log, so per shard we keep the run's
  // chunk-granular split points (the coalescer's ReadRanges); a shard-indexed slot table
  // makes the per-position step O(1) instead of the old scan over seen shards.
  struct ShardRun {
    ShardId shard = 0;
    std::vector<ReadRange> ranges;
  };
  const uint32_t chunk = std::max<uint32_t>(1, params_.client_read.read_chunk_records);
  std::vector<ShardRun> runs;
  std::vector<int32_t> slot_of_shard;  // shard id -> index into runs; -1 = unseen
  for (LogPos p = rd->from; p < rd->from + rd->len; ++p) {
    const uint32_t s = posmap_[p];
    if (s >= slot_of_shard.size()) {
      slot_of_shard.resize(s + 1, -1);
    }
    if (slot_of_shard[s] < 0) {
      slot_of_shard[s] = static_cast<int32_t>(runs.size());
      runs.push_back(ShardRun{static_cast<ShardId>(s), {ReadRange{p, 1}}});
      continue;
    }
    ShardRun& run = runs[slot_of_shard[s]];
    if (run.ranges.back().len == chunk) {
      run.ranges.push_back(ReadRange{p, 1});
    } else {
      run.ranges.back().len++;
    }
  }
  auto state = std::make_shared<MergeState>();
  auto gather = Gather::Create(runs.size(), [this, state, rd](const std::vector<Status>& ss) {
    for (const Status& s : ss) {
      if (!s.ok()) {
        if (rd->attempts >= 10) {
          rd->cb(s, {});
          return;
        }
        // Target unreachable (possibly a replaced replica) or a slow-path wait outlived
        // the attempt timeout: refresh the shard membership and retry with backoff.
        rd->attempts++;
        RefreshShardConfig([this, rd]() {
          endpoint_.loop()->Schedule(
              RetryBackoffNs(static_cast<uint32_t>(rd->attempts), rng_.NextDouble()),
              [this, rd]() { TryRead(rd); });
        });
        return;
      }
    }
    std::sort(state->all.begin(), state->all.end(),
              [](const PositionedRecord& a, const PositionedRecord& b) { return a.pos < b.pos; });
    rd->cb(Status::Ok(), std::move(state->all));
  });
  // Every position here has a posmap entry, and the map server gates on stable-gp — so
  // every sub is a known-stable read and any replica may serve it. The router picks the
  // least-loaded of two random replicas; the coalescer batches same-target subs and
  // falls back to the primary's waiting read if the pick clips.
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& replicas = view_.shards[runs[i].shard];
    const NodeId primary = replicas[0];
    const NodeId target = router_.PickStable(replicas);
    auto slot = gather->Slot(i);
    coalescer_.Add(target, primary, std::move(runs[i].ranges),
                   [state, slot](Status s, std::vector<PositionedRecord> recs) {
                     if (s.ok()) {
                       // Record payloads alias the reply's attachments: they stay
                       // valid in state->all after the decoder is gone.
                       for (PositionedRecord& pr : recs) {
                         state->all.push_back(std::move(pr));
                       }
                     }
                     slot(std::move(s), Decoder());
                   });
  }
}

// --- readNext (index tier) ------------------------------------------------------------------

void ErwinStClient::ReadNext(LogId log, StreamTag tag, LogPos from, uint32_t max,
                             ReadNextCallback cb) {
  if (tag == kNoTag) {
    cb(Status::InvalidArgument("read-next requires a stream tag"), {}, from);
    return;
  }
  if (view_.index_nodes.empty()) {
    ScanReadNext(log, tag, from, max, std::move(cb));
    return;
  }
  ReadNextViaIndex(log, tag, from, max, std::move(cb), 0);
}

void ErwinStClient::ReadNextViaIndex(LogId log, StreamTag tag, LogPos from, uint32_t max,
                                     ReadNextCallback cb, int attempt) {
  IndexSelectiveRead(&endpoint_, &params_, &view_, client_id_, log, tag, from, max,
                     /*by_rank=*/false, cb,
                     [this, log, tag, from, max, cb, attempt]() {
                       if (attempt >= 3) {
                         ScanReadNext(log, tag, from, max, cb);
                         return;
                       }
                       // The shard fetch (or the index pull itself) failed — likely a
                       // stale replica set rather than a down index tier. Re-resolve
                       // the shard membership and retry the selective path with the
                       // shared jittered backoff before paying for a full scan.
                       RefreshShardConfig([this, log, tag, from, max, cb, attempt]() {
                         endpoint_.loop()->Schedule(
                             RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
                             [this, log, tag, from, max, cb, attempt]() {
                               ReadNextViaIndex(log, tag, from, max, cb, attempt + 1);
                             });
                       });
                     },
                     &router_, &tails_);
}

// --- named-log read / tail (virtual logs) ---------------------------------------------------

void ErwinStClient::ReadLog(LogId log, LogPos from, uint64_t len, ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  if (view_.index_nodes.empty()) {
    ScanReadLog(log, from, len, std::move(cb));
    return;
  }
  ReadLogViaIndex(log, from, len, std::move(cb), 0);
}

void ErwinStClient::ReadLogViaIndex(LogId log, LogPos from, uint64_t len, ReadCallback cb,
                                    int attempt) {
  // The phylog's positions are ranks in its (log, kNoTag) index list; a by_rank lookup
  // serves [from, from+len) directly and the helper re-labels the records with ranks.
  const uint32_t max = static_cast<uint32_t>(std::min<uint64_t>(len, 1u << 20));
  IndexSelectiveRead(
      &endpoint_, &params_, &view_, client_id_, log, kNoTag, from, max,
      /*by_rank=*/true,
      [cb](Status s, std::vector<PositionedRecord> recs, LogPos) {
        cb(std::move(s), std::move(recs));
      },
      [this, log, from, len, cb, attempt]() {
        if (attempt >= 3) {
          ScanReadLog(log, from, len, cb);
          return;
        }
        RefreshShardConfig([this, log, from, len, cb, attempt]() {
          endpoint_.loop()->Schedule(
              RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
              [this, log, from, len, cb, attempt]() {
                ReadLogViaIndex(log, from, len, cb, attempt + 1);
              });
        });
      },
      &router_, &tails_);
}

// --- tail / trim ----------------------------------------------------------------------------

void ErwinStClient::CheckTail(TailCallback cb) { CheckTailAttempt(std::move(cb), 0); }

void ErwinStClient::CheckTailAttempt(TailCallback cb, int attempt) {
  endpoint_.Call(view_.seq_config[0], kSeqCheckTail, "",
                 [this, cb, attempt](Status s, Decoder d) {
                   if (!s.ok()) {
                     if (attempt >= 20) {
                       cb(std::move(s), 0, 0);
                       return;
                     }
                     ProbeThen([this, cb, attempt]() { CheckTailAttempt(cb, attempt + 1); });
                     return;
                   }
                   SeqCheckTailResp resp;
                   if (!resp.Decode(d)) {
                     cb(Status::Internal("bad tail response"), 0, 0);
                     return;
                   }
                   last_tail_view_ = resp.view;
                   tails_.Note(endpoint_.loop()->Now(), resp.durable, resp.stable);
                   cb(Status::Ok(), resp.durable, resp.stable);
                 },
                 5 * kMs);
}

bool ErwinStClient::CachedTail(LogPos* durable, LogPos* stable) {
  if (!tails_.Get(endpoint_.loop()->Now(), params_.client_read.tail_cache_ttl_ns, durable,
                  stable)) {
    return false;
  }
  read_stats_.tail_cache_hits++;
  return true;
}

void ErwinStClient::CheckTailOfLog(LogId log, TailCallback cb) {
  CheckTailOfLogAttempt(log, std::move(cb), 0);
}

void ErwinStClient::CheckTailOfLogAttempt(LogId log, TailCallback cb, int attempt) {
  SeqCheckTailReq req;
  req.log = log;
  endpoint_.CallMsg(view_.seq_config[0], kSeqCheckTail, req,
                    [this, log, cb, attempt](Status s, Decoder d) {
                      if (!s.ok()) {
                        if (attempt >= 20) {
                          cb(std::move(s), 0, 0);
                          return;
                        }
                        ProbeThen([this, log, cb, attempt]() {
                          CheckTailOfLogAttempt(log, cb, attempt + 1);
                        });
                        return;
                      }
                      SeqCheckTailResp resp;
                      if (!resp.Decode(d)) {
                        cb(Status::Internal("bad tail response"), 0, 0);
                        return;
                      }
                      cb(Status::Ok(), resp.durable, resp.stable);
                    },
                    5 * kMs);
}

void ErwinStClient::ResolveLog(const std::string& name,
                               std::function<void(Status, LogId)> cb) {
  if (view_.zk == kInvalidNode) {
    cb(Status::InvalidArgument("unknown log: " + name), kDefaultLog);
    return;
  }
  // Refresh the registry from "/logs/config" and retry the lookup: Open() falls
  // through to here exactly when the installed snapshot predates the log's creation.
  ZkClient zk(&endpoint_, view_.zk);
  zk.GetData("/logs/config",
             [this, name, cb = std::move(cb)](Status s, std::string data, uint64_t) mutable {
               if (s.ok()) {
                 uint64_t epoch = 0;
                 std::vector<LogRegistryEntry> entries;
                 if (DecodeLogConfig(data, &epoch, &entries) && epoch > view_.log_epoch) {
                   view_.log_epoch = epoch;
                   view_.logs = entries;
                   InstallLogRegistry(std::move(entries));
                 }
               }
               for (const LogRegistryEntry& entry : log_registry()) {
                 if (entry.name == name && !entry.deleted) {
                   cb(Status::Ok(), entry.id);
                   return;
                 }
               }
               cb(Status::InvalidArgument("unknown log: " + name), kDefaultLog);
             },
             5 * kMs);
}

void ErwinStClient::Trim(LogPos index, TrimCallback cb) {
  TrimAttempt(index, std::move(cb), 0);
}

void ErwinStClient::TrimAttempt(LogPos index, TrimCallback cb, int attempt) {
  TrimMsg msg{index};
  endpoint_.CallMsg(view_.seq_config[0], kSeqTrim, msg,
                    [this, index, cb, attempt](Status s, Decoder) {
                      if (!s.ok() && attempt < 20) {
                        ProbeThen([this, index, cb, attempt]() {
                          TrimAttempt(index, cb, attempt + 1);
                        });
                        return;
                      }
                      cb(std::move(s));
                    },
                    10 * kMs);
}

// --- test hooks (§5.4) -----------------------------------------------------------------------

void ErwinStClient::AppendMetadataOnly(ShardId shard, AppendCallback cb) {
  // Simulates a client that crashed after the metadata write but before the data write:
  // the shard primary must resolve the position as a no-op after its timeout.
  const RecordId id{client_id_, next_request_id_++};
  SeqAppendReq meta;
  meta.view = view_.view;
  meta.id = id;
  meta.target_shard = shard;
  meta.is_meta = true;
  Encoder enc;
  meta.Encode(enc);
  const Buf body = enc.TakeBuf();
  const size_t n = view_.seq_config.size();
  auto gather = Gather::Create(n, [cb](const std::vector<Status>& ss) {
    for (const Status& s : ss) {
      if (!s.ok()) {
        cb(s);
        return;
      }
    }
    cb(Status::Ok());
  });
  for (size_t i = 0; i < n; ++i) {
    endpoint_.Call(view_.seq_config[i], kSeqAppendMeta, body, gather->Slot(i),
                   params_.client_append_timeout_ns);
  }
}

void ErwinStClient::AppendDataOnly(ShardId shard, Buf payload, AppendCallback cb) {
  // Simulates a crash after the data write but before the metadata write: the data is
  // orphaned on the shard and must be garbage-collected by scrubbing.
  const RecordId id{client_id_, next_request_id_++};
  ShardPutDataReq data{id, std::move(payload)};
  Encoder enc;
  data.Encode(enc);
  const std::vector<Buf> atts = enc.TakeAtts();
  const Buf body = enc.TakeBuf();
  const auto& replicas = view_.shards[shard];
  auto gather = Gather::Create(replicas.size(), [cb](const std::vector<Status>& ss) {
    for (const Status& s : ss) {
      if (!s.ok()) {
        cb(s);
        return;
      }
    }
    cb(Status::Ok());
  });
  for (size_t i = 0; i < replicas.size(); ++i) {
    endpoint_.Call(replicas[i], kShardPutData, body, gather->Slot(i),
                   params_.client_append_timeout_ns, atts);
  }
}

}  // namespace lazylog
