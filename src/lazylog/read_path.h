// Client-side read scale-out machinery (§5.3, DESIGN.md §6): load-aware replica
// routing, coalesced multi-range reads, and tail caching/readahead.
//
// The invariant that makes any of this safe: every shard replica gates ServeRead on its
// *own* stable-gp, learned from the orderer's broadcasts. A stable position has its
// final, immutable binding on every replica that considers it stable, so a read of a
// known-stable range may be served by ANY replica — the worst a lagging backup can do
// is clip the range short, never return a different binding. Reads at or above the
// client's stable knowledge keep going to the primary, whose waiter queue provides the
// wait-for-stability semantics (§4.4).
#ifndef SRC_LAZYLOG_READ_PATH_H_
#define SRC_LAZYLOG_READ_PATH_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/params.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lazylog/shared_log_client.h"
#include "src/rpc/rpc.h"
#include "src/rpc/rpc_methods.h"
#include "src/storage/shard_messages.h"

namespace lazylog {

// Load-aware replica selection: power-of-two-choices over a per-replica EWMA of
// observed read cost (measured RTT plus the server-piggybacked CPU backlog), with an
// in-flight penalty so a replica is not flooded between feedback samples. Modes 0/1
// reproduce the old behaviours for A/B benches: always-primary and static
// client-modulo pinning.
class ReplicaRouter {
 public:
  ReplicaRouter(const SimParams* params, Rng* rng, ClientId client_id, ReadPathStats* stats)
      : params_(params), rng_(rng), client_id_(client_id), stats_(stats) {}

  // Picks the serving replica for a known-stable read. `replicas[0]` is the primary.
  NodeId PickStable(const std::vector<NodeId>& replicas) {
    stats_->routed_reads++;
    NodeId picked = replicas[0];
    if (replicas.size() > 1) {
      switch (params_->client_read.read_routing_mode) {
        case 0:
          break;
        case 1:
          picked = replicas[client_id_ % replicas.size()];
          break;
        default: {
          // Two distinct uniform choices; lower estimated cost wins. Randomness comes
          // from the client's seeded rng so chaos replays stay deterministic.
          const size_t a = rng_->Uniform(replicas.size());
          size_t b = rng_->Uniform(replicas.size() - 1);
          if (b >= a) {
            ++b;
          }
          picked = Score(replicas[a]) <= Score(replicas[b]) ? replicas[a] : replicas[b];
          break;
        }
      }
    }
    if (picked != replicas[0]) {
      stats_->backup_routed++;
    }
    return picked;
  }

  void OnIssue(NodeId n) { est_[n].inflight++; }

  // Feedback from a completed (or failed — then queue_ns is 0 and the elapsed time is
  // the penalty) read RPC.
  void OnReply(NodeId n, uint64_t elapsed_ns, uint64_t server_queue_ns) {
    Estimate& e = est_[n];
    if (e.inflight > 0) {
      e.inflight--;
    }
    const double sample = static_cast<double>(elapsed_ns + server_queue_ns);
    const double alpha = params_->client_read.route_ewma_alpha;
    e.ewma = e.ewma == 0.0 ? sample : alpha * sample + (1.0 - alpha) * e.ewma;
  }

  double Score(NodeId n) const {
    auto it = est_.find(n);
    if (it == est_.end()) {
      return 0.0;  // unexplored replicas look cheap, so p2c explores them
    }
    const double base = it->second.ewma;
    // Each in-flight request is expected to add roughly one service time of queueing.
    return base + static_cast<double>(it->second.inflight) * (base > 0.0 ? base : 50'000.0);
  }

 private:
  struct Estimate {
    double ewma = 0.0;      // ns; 0 = never observed
    uint32_t inflight = 0;  // our own outstanding reads against this replica
  };

  const SimParams* params_;
  Rng* rng_;
  ClientId client_id_;
  ReadPathStats* stats_;
  std::unordered_map<NodeId, Estimate> est_;
};

// Most recent durable/stable tail this client has heard — from CheckTail replies and
// from the piggyback every shard read reply carries. Both tails are monotone under one
// view, so a stale cached value is merely conservative, never wrong; `Get` additionally
// applies a freshness TTL for pollers that want a recent value.
class TailCache {
 public:
  void Note(SimTime now, LogPos durable, LogPos stable) {
    durable_ = std::max(durable_, durable);
    stable_ = std::max(stable_, stable);
    noted_at_ = now;
  }

  bool Get(SimTime now, uint64_t ttl_ns, LogPos* durable, LogPos* stable) const {
    if (noted_at_ == 0 || now - noted_at_ > ttl_ns) {
      return false;
    }
    *durable = durable_;
    *stable = stable_;
    return true;
  }

  LogPos stable() const { return stable_; }
  LogPos durable() const { return durable_; }

 private:
  LogPos durable_ = 0;
  LogPos stable_ = 0;
  SimTime noted_at_ = 0;
};

// Speculatively prefetched stable records, keyed by global position. Only ever holds
// records that were below stable-gp when fetched, so entries are final bindings and can
// be served without revalidation.
class ReadAheadCache {
 public:
  // Appends the cached contiguous run starting exactly at `from` (up to `len` records)
  // to `out` and returns how many were served. Served entries — and everything before
  // them — are dropped: the sequential reader has moved past.
  uint64_t TakePrefix(LogPos from, uint64_t len, std::vector<PositionedRecord>* out) {
    uint64_t served = 0;
    while (served < len) {
      auto it = entries_.find(from + served);
      if (it == entries_.end()) {
        break;
      }
      out->push_back(it->second);
      ++served;
    }
    if (served > 0) {
      entries_.erase(entries_.begin(), entries_.upper_bound(from + served - 1));
    }
    return served;
  }

  void Insert(std::vector<PositionedRecord> recs, size_t cap) {
    for (PositionedRecord& pr : recs) {
      entries_.emplace(pr.pos, std::move(pr));
    }
    while (entries_.size() > cap) {
      entries_.erase(entries_.begin());
    }
  }

  bool Covers(LogPos pos) const { return entries_.count(pos) > 0; }
  size_t size() const { return entries_.size(); }

 private:
  std::map<LogPos, PositionedRecord> entries_;
};

// Merges concurrent same-replica read sub-requests into batched multi-range RPCs.
//
// A *sub* is one logical sub-read: a run of consecutive target-local records, expressed
// as pre-split ReadRanges (the caller owns the position arithmetic — Erwin-st splits on
// its cached posmap, Erwin-m on its stride — each range at most read_chunk_records
// long). Subs added for the same target within the aggregation window flush as one or
// more kShardMultiRangeRead RPCs of at most read_chunk_records each; issuing the chunks
// as independent RPCs lets the shard's response-serialization CPU for chunk k overlap
// the NIC transmission of chunk k-1 on large ranges.
//
// The batched RPC never waits. A sub whose ranges come back clipped (the serving
// replica's stable-gp trails the client's knowledge, or the replica is gone) is
// re-issued in full to the shard primary via the classic waiting read and the results
// are merged with per-position dedupe — wait semantics live entirely at the primary.
class ReadCoalescer {
 public:
  using SubCallback = std::function<void(Status, std::vector<PositionedRecord>)>;
  // Fired for every read reply that carries a tail piggyback: (serving replica,
  // advertised stable-gp, records). The chaos read-staleness oracle subscribes.
  using ReplyObserver =
      std::function<void(NodeId, LogPos, const std::vector<PositionedRecord>&)>;

  ReadCoalescer(RpcEndpoint* ep, const SimParams* params, ReplicaRouter* router,
                TailCache* tails, ReadPathStats* stats)
      : ep_(ep), params_(params), router_(router), tails_(tails), stats_(stats) {}

  void SetReplyObserver(ReplyObserver obs) { observer_ = std::move(obs); }

  // Enqueues one sub-read routed to `target`; `primary` serves the waiting fallback.
  // `ranges` must be non-empty, in ascending order, and describe one consecutive run of
  // target-local records (so the primary fallback can re-read the whole sub as
  // (first pos, total len)).
  void Add(NodeId target, NodeId primary, std::vector<ReadRange> ranges, SubCallback cb) {
    auto sub = std::make_shared<Sub>();
    sub->pos = ranges.front().pos;
    for (const ReadRange& range : ranges) {
      sub->len += range.len;
    }
    sub->ranges = std::move(ranges);
    sub->primary = primary;
    sub->cb = std::move(cb);
    stats_->coalesced_subs++;
    auto& q = pending_[target];
    q.push_back(std::move(sub));
    if (q.size() == 1) {
      ep_->loop()->Schedule(params_->client_read.read_coalesce_window_ns,
                            [this, target]() { Flush(target); });
    }
  }

  // Classic single-range read against one replica (the waiting primary path and the
  // clipped-sub fallback). Feeds the router and tail cache from the reply piggyback
  // like the batched path does.
  void ClassicRead(NodeId target, LogPos pos, uint32_t len, bool nowait, SubCallback cb) {
    ShardReadReq req{pos, len, nowait};
    stats_->primary_reads++;
    router_->OnIssue(target);
    const SimTime t0 = ep_->loop()->Now();
    ep_->CallMsg(target, kShardRead, req,
                 [this, target, t0, cb = std::move(cb)](Status s, Decoder d) {
                   std::vector<PositionedRecord> recs;
                   if (s.ok()) {
                     ShardReadResp resp;
                     if (resp.Decode(d)) {
                       NoteReply(target, t0, resp.stable_gp, resp.durable_tail,
                                 resp.queue_ns, resp.records);
                       recs = std::move(resp.records);
                     } else {
                       s = Status::Internal("bad read response");
                       router_->OnReply(target, ep_->loop()->Now() - t0, 0);
                     }
                   } else {
                     router_->OnReply(target, ep_->loop()->Now() - t0, 0);
                   }
                   cb(std::move(s), std::move(recs));
                 },
                 params_->rpc_timeout_ns);
  }

 private:
  struct Sub {
    LogPos pos = 0;     // first position of the run
    uint32_t len = 0;   // total records across all ranges
    NodeId primary = kInvalidNode;
    std::vector<ReadRange> ranges;
    SubCallback cb;
    uint32_t outstanding = 0;  // chunk RPCs not yet replied
    bool clipped = false;
    bool failed = false;
    std::vector<PositionedRecord> got;
  };
  // One range of one sub inside one RPC.
  struct Piece {
    std::shared_ptr<Sub> sub;
    ReadRange range;
  };

  void Flush(NodeId target) {
    auto it = pending_.find(target);
    if (it == pending_.end()) {
      return;
    }
    std::vector<std::shared_ptr<Sub>> subs = std::move(it->second);
    pending_.erase(it);
    const uint32_t chunk = std::max<uint32_t>(1, params_->client_read.read_chunk_records);
    // Pack ranges into RPCs of at most `chunk` records each, preserving order.
    std::vector<std::vector<Piece>> rpcs;
    uint32_t budget = 0;
    for (auto& sub : subs) {
      for (const ReadRange& range : sub->ranges) {
        if (rpcs.empty() || budget + range.len > chunk) {
          rpcs.emplace_back();
          budget = 0;
        }
        rpcs.back().push_back(Piece{sub, range});
        budget += range.len;
        sub->outstanding++;
      }
    }
    stats_->coalesced_batches += rpcs.size();
    if (rpcs.size() > 1) {
      stats_->chunk_rpcs += rpcs.size() - 1;
    }
    for (auto& pieces : rpcs) {
      IssueRpc(target, std::move(pieces));
    }
  }

  void IssueRpc(NodeId target, std::vector<Piece> pieces) {
    ShardMultiRangeReadReq req;
    req.ranges.reserve(pieces.size());
    for (const Piece& p : pieces) {
      req.ranges.push_back(p.range);
    }
    router_->OnIssue(target);
    const SimTime t0 = ep_->loop()->Now();
    ep_->CallMsg(
        target, kShardMultiRangeRead, req,
        [this, target, t0, pieces = std::move(pieces)](Status s, Decoder d) mutable {
          ShardMultiRangeReadResp resp;
          const bool ok = s.ok() && resp.Decode(d) && resp.counts.size() == pieces.size();
          if (ok) {
            NoteReply(target, t0, resp.stable_gp, resp.durable_tail, resp.queue_ns,
                      resp.records);
            size_t idx = 0;
            for (size_t i = 0; i < pieces.size(); ++i) {
              Piece& p = pieces[i];
              const uint32_t c = std::min<uint32_t>(
                  resp.counts[i], static_cast<uint32_t>(resp.records.size() - idx));
              for (uint32_t k = 0; k < c; ++k) {
                p.sub->got.push_back(std::move(resp.records[idx + k]));
              }
              idx += c;
              if (c < p.range.len) {
                p.sub->clipped = true;
              }
            }
          } else {
            router_->OnReply(target, ep_->loop()->Now() - t0, 0);
            for (Piece& p : pieces) {
              p.sub->failed = true;
            }
          }
          for (Piece& p : pieces) {
            if (--p.sub->outstanding == 0) {
              FinishSub(p.sub);
            }
          }
        },
        params_->rpc_timeout_ns);
  }

  void FinishSub(const std::shared_ptr<Sub>& sub) {
    if (sub->failed) {
      // An outright RPC failure (dead or replaced replica) surfaces to the caller: its
      // retry ladder refreshes the shard membership before retrying, which a silent
      // primary fallback would never trigger.
      sub->cb(Status::Timeout("routed read failed"), {});
      return;
    }
    if (!sub->clipped) {
      Deliver(sub);
      return;
    }
    // The serving replica clipped the run: its stable-gp trails what the client knows.
    // Re-issue the whole sub to the primary via the classic waiting read;
    // already-fetched records are deduped at merge. A failure here surfaces to the
    // caller, whose retry ladder re-resolves the shard config.
    stats_->clipped_resends++;
    ClassicRead(sub->primary, sub->pos, sub->len, /*nowait=*/false,
                [this, sub](Status s, std::vector<PositionedRecord> recs) {
                  if (!s.ok()) {
                    sub->cb(std::move(s), {});
                    return;
                  }
                  for (PositionedRecord& pr : recs) {
                    sub->got.push_back(std::move(pr));
                  }
                  Deliver(sub);
                });
  }

  void Deliver(const std::shared_ptr<Sub>& sub) {
    std::sort(sub->got.begin(), sub->got.end(),
              [](const PositionedRecord& a, const PositionedRecord& b) {
                return a.pos < b.pos;
              });
    sub->got.erase(std::unique(sub->got.begin(), sub->got.end(),
                               [](const PositionedRecord& a, const PositionedRecord& b) {
                                 return a.pos == b.pos;
                               }),
                   sub->got.end());
    sub->cb(Status::Ok(), std::move(sub->got));
  }

  void NoteReply(NodeId target, SimTime t0, LogPos stable, LogPos durable,
                 uint64_t queue_ns, const std::vector<PositionedRecord>& records) {
    const SimTime now = ep_->loop()->Now();
    router_->OnReply(target, now - t0, queue_ns);
    tails_->Note(now, durable, stable);
    if (observer_) {
      observer_(target, stable, records);
    }
  }

  RpcEndpoint* ep_;
  const SimParams* params_;
  ReplicaRouter* router_;
  TailCache* tails_;
  ReadPathStats* stats_;
  ReplyObserver observer_;
  std::unordered_map<NodeId, std::vector<std::shared_ptr<Sub>>> pending_;
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_READ_PATH_H_
