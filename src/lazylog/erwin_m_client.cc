#include "src/lazylog/erwin_m_client.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/control/zookeeper.h"
#include "src/lazylog/index_read.h"

namespace lazylog {

ErwinMClient::ErwinMClient(Network* net, const SimParams& params, ClusterView view,
                           ClientId client_id)
    : endpoint_(net),
      params_(params),
      view_(std::move(view)),
      client_id_(client_id),
      rng_(params.seed ^ (0xc11e47a5ULL + client_id)),
      router_(&params_, &rng_, client_id, &read_stats_),
      coalescer_(&endpoint_, &params_, &router_, &tails_, &read_stats_) {
  InstallLogRegistry(view_.logs);
}

// --- append ------------------------------------------------------------------------------

void ErwinMClient::Append(const AppendOptions& options, Buf payload, AppendCallback cb) {
  if (QuotaMuted(options.log, cb)) {
    return;
  }
  auto p = std::make_shared<PendingAppend>();
  p->id = RecordId{client_id_, next_request_id_++};
  p->payload = std::move(payload);
  p->tag = options.tag;
  p->log = options.log;
  p->cb = std::move(cb);
  SendAppend(std::move(p));
}

void ErwinMClient::SendAppend(std::shared_ptr<PendingAppend> p) {
  p->attempts++;
  SeqAppendReq req;
  req.view = view_.view;
  req.id = p->id;
  req.payload = p->payload;
  req.is_meta = false;
  req.tag = p->tag;
  req.log = p->log;
  // Encoded once; every sequencing replica shares the frame and the payload
  // attachment, so an n-way append fans out refcounts rather than bytes.
  Encoder enc;
  req.Encode(enc);
  const std::vector<Buf> atts = enc.TakeAtts();
  const Buf body = enc.TakeBuf();
  const size_t n = view_.seq_config.size();
  auto gather = Gather::Create(n, [this, p](const std::vector<Status>& ss) {
    const bool all_ok =
        std::all_of(ss.begin(), ss.end(), [](const Status& s) { return s.ok(); });
    if (all_ok) {
      // Durable on all sequencing replicas: the append is complete (1 RTT).
      p->cb(Status::Ok());
      return;
    }
    // The leader's verdict (slot 0: seq_config[0]) decides the retry budget; once the
    // leader admits, it dup-acks every resend, so the flag is sticky across attempts
    // without storing it.
    for (const Status& s : ss) {
      if (s.code() == StatusCode::kOverloaded) {
        EnqueueOverloadRetry(p, /*leader_admitted=*/ss[0].ok());
        return;
      }
    }
    // Leader-only verdicts on the virtual-log control state: a quota refusal gets the
    // short in-place backoff (the bucket refills in milliseconds); a deleted-log
    // refusal is permanent and surfaces immediately.
    if (ss[0].code() == StatusCode::kQuotaExceeded) {
      MuteQuota(p->log);
      EnqueueQuotaRetry(std::move(p));
      return;
    }
    if (ss[0].code() == StatusCode::kInvalidArgument) {
      p->cb(ss[0]);
      return;
    }
    for (const Status& s : ss) {
      if (!s.ok()) {
        p->last_error = s;
        break;
      }
    }
    EnqueueRetry(p);
  });
  for (size_t i = 0; i < n; ++i) {
    endpoint_.Call(view_.seq_config[i], kSeqAppend, body, gather->Slot(i),
                   params_.client_append_timeout_ns, atts);
  }
}

void ErwinMClient::EnqueueRetry(std::shared_ptr<PendingAppend> p) {
  if (p->attempts > 50) {
    LLOG(kWarn) << "append giving up after " << p->attempts << " attempts";
    p->cb(p->last_error.ok() ? Status::Timeout("append retries exhausted") : p->last_error);
    return;
  }
  retry_queue_.push_back(std::move(p));
  if (!resolving_config_) {
    resolving_config_ = true;
    ResolveConfig();
  }
}

// An overloaded replica refused the append *before* doing any work. That is not a view
// problem: probing the config would succeed immediately and resend straight into the
// same full ring, so back off in place on the shared jittered schedule instead. The
// budget is deliberately small — under sustained saturation, surfacing kOverloaded to
// the application beats parking an unbounded queue of doomed retries. Replicas that
// did admit an earlier attempt dup-filter the resend, so the id never binds twice.
void ErwinMClient::EnqueueOverloadRetry(std::shared_ptr<PendingAppend> p,
                                        bool leader_admitted) {
  p->overload_attempts++;
  // Leader-refused: shed after the small budget. Leader-admitted: a follower's gate
  // refused it, but the entry already occupies an ordering slot — keep retrying (the
  // followers' retry-priority band and shed-entry scrub guarantee progress), with a
  // hard cap diverting pathological cases to the slow config-probing path.
  if (!leader_admitted &&
      p->overload_attempts > static_cast<int>(params_.client_overload_retry_limit)) {
    p->cb(Status::Overloaded("append shed after overload retries"));
    return;
  }
  if (p->overload_attempts > 64) {
    EnqueueRetry(p);
    return;
  }
  p->last_error = Status::Overloaded();
  // Computed before the capture moves from p (argument evaluation is unsequenced).
  const uint64_t backoff =
      OverloadBackoffNs(static_cast<uint32_t>(p->overload_attempts), rng_.NextDouble());
  endpoint_.loop()->Schedule(backoff,
                             [this, p = std::move(p)]() mutable { SendAppend(std::move(p)); });
}

// A quota refusal is the tenant's own doing, not the cluster's: the ring has room, the
// bucket is empty. Retry on the short overload schedule (one refill period away), but
// surface kQuotaExceeded — not kOverloaded — when the budget runs out so the
// application can tell throttling from congestion.
// The leader said this log's bucket is empty: shed fresh appends locally for the mute
// window so an over-quota tenant stops flooding every replica with doomed RPCs.
// In-flight retries bypass the mute — their budget is what smoothly drains the
// bucket's refill back to admitted appends.
bool ErwinMClient::QuotaMuted(LogId log, AppendCallback& cb) {
  if (log == kDefaultLog || params_.client_quota_mute_ns == 0) {
    return false;
  }
  auto it = quota_muted_until_.find(log);
  if (it == quota_muted_until_.end() || endpoint_.loop()->Now() >= it->second) {
    return false;
  }
  endpoint_.loop()->Schedule(0, [cb = std::move(cb)]() {
    cb(Status::QuotaExceeded("append shed by tenant quota (client-side)"));
  });
  return true;
}

void ErwinMClient::MuteQuota(LogId log) {
  if (log == kDefaultLog || params_.client_quota_mute_ns == 0) {
    return;
  }
  quota_muted_until_[log] = endpoint_.loop()->Now() + params_.client_quota_mute_ns;
}

void ErwinMClient::EnqueueQuotaRetry(std::shared_ptr<PendingAppend> p) {
  p->overload_attempts++;
  if (p->overload_attempts > static_cast<int>(params_.client_overload_retry_limit)) {
    p->cb(Status::QuotaExceeded("append shed by tenant quota"));
    return;
  }
  p->last_error = Status::QuotaExceeded();
  const uint64_t backoff =
      OverloadBackoffNs(static_cast<uint32_t>(p->overload_attempts), rng_.NextDouble());
  endpoint_.loop()->Schedule(backoff,
                             [this, p = std::move(p)]() mutable { SendAppend(std::move(p)); });
}

void ErwinMClient::ProbeThen(std::function<void()> then, int attempt) {
  if (attempt > 1000) {
    then();  // give up resolving; the continuation will fail and surface the error
    return;
  }
  const NodeId target = view_.seq_config[probe_cursor_++ % view_.seq_config.size()];
  endpoint_.Call(
      target, kSeqGetConfig, "",
      [this, then = std::move(then), attempt](Status s, Decoder d) mutable {
        SeqConfigResp resp;
        bool usable = false;
        if (s.ok()) {
          // Only adopt views at least as new as ours: a partitioned straggler still in
          // an older (fenced-off) view must not drag the client backwards.
          usable = resp.Decode(d) && !resp.sealed && !resp.config.empty() &&
                   resp.view >= view_.view;
        }
        if (!usable) {
          endpoint_.loop()->Schedule(
              RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
              [this, then = std::move(then), attempt]() mutable {
                ProbeThen(std::move(then), attempt + 1);
              });
          return;
        }
        if (resp.view != view_.view) {
          view_changes_++;
        }
        view_.view = resp.view;
        view_.seq_config.assign(resp.config.begin(), resp.config.end());
        then();
      },
      2 * kMs);
}

void ErwinMClient::RefreshShardConfig(std::function<void()> then) {
  if (view_.zk == kInvalidNode) {
    then();
    return;
  }
  ZkClient zk(&endpoint_, view_.zk);
  zk.GetData(
      "/shards/config",
      [this, then = std::move(then)](Status s, std::string data, uint64_t) mutable {
        if (s.ok()) {
          uint64_t epoch = 0;
          std::vector<std::vector<NodeId>> shards;
          if (DecodeShardConfig(data, &epoch, &shards) && epoch > view_.shard_epoch) {
            view_.shard_epoch = epoch;
            view_.shards = std::move(shards);
          }
        }
        then();
      },
      5 * kMs);
}

void ErwinMClient::ResolveConfig() {
  // Probe until an unsealed view is found, refresh the shard membership, then resend
  // every queued append under the new config (same record ids; replicas filter
  // duplicates).
  ProbeThen([this]() {
    RefreshShardConfig([this]() {
      resolving_config_ = false;
      auto queued = std::move(retry_queue_);
      retry_queue_.clear();
      for (auto& p : queued) {
        SendAppend(std::move(p));
      }
    });
  });
}

// --- read (p mod n placement, §4.4) -------------------------------------------------------

void ErwinMClient::Read(LogPos from, uint64_t len, ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  // Serve whatever contiguous prefix the readahead cache holds, fetch the rest.
  auto cached = std::make_shared<std::vector<PositionedRecord>>();
  const uint64_t hit = readahead_.TakePrefix(from, len, cached.get());
  read_stats_.readahead_hits += hit;
  if (hit == len) {
    endpoint_.loop()->Schedule(0, [cached, cb = std::move(cb)]() {
      cb(Status::Ok(), std::move(*cached));
    });
    MaybePrefetch(from + len);
    return;
  }
  ReadCallback wrapped = [this, from, len, cached, cb = std::move(cb)](
                             Status s, std::vector<PositionedRecord> recs) {
    if (!s.ok()) {
      cb(std::move(s), {});
      return;
    }
    if (cached->empty()) {
      cached->swap(recs);
    } else {
      for (PositionedRecord& pr : recs) {
        cached->push_back(std::move(pr));
      }
    }
    MaybePrefetch(from + len);
    cb(Status::Ok(), std::move(*cached));
  };
  ReadAttempt(from + hit, len - hit, std::move(wrapped), 0);
}

void ErwinMClient::MaybePrefetch(LogPos next) {
  const auto& cr = params_.client_read;
  if (cr.readahead_records == 0 || readahead_inflight_) {
    return;
  }
  // Only the stable region is prefetched: those bindings are final, so cached entries
  // never need revalidation.
  const LogPos stable = tails_.stable();
  if (next >= stable || readahead_.Covers(next)) {
    return;
  }
  const uint32_t n =
      static_cast<uint32_t>(std::min<uint64_t>(cr.readahead_records, stable - next));
  readahead_inflight_ = true;
  read_stats_.readahead_fetched += n;
  ReadAttempt(next, n,
              [this](Status s, std::vector<PositionedRecord> recs) {
                readahead_inflight_ = false;
                if (s.ok()) {
                  readahead_.Insert(
                      std::move(recs),
                      std::max<size_t>(4 * params_.client_read.readahead_records, 1024));
                }
              },
              0);
}

void ErwinMClient::ReadAttempt(LogPos from, uint64_t len, ReadCallback cb, int attempt) {
  const uint32_t n = view_.num_shards();
  struct MergeState {
    std::vector<PositionedRecord> all;
  };
  auto state = std::make_shared<MergeState>();
  // One sub-read per shard that owns at least one position in [from, from+len): the
  // shard's positions are from+offset, from+offset+n, ... (p mod n placement).
  struct Sub {
    ShardId shard = 0;
    LogPos first = 0;
    uint32_t count = 0;
  };
  std::vector<Sub> subs;
  for (ShardId s = 0; s < n; ++s) {
    const uint64_t offset = (s + n - static_cast<uint32_t>(from % n)) % n;
    if (offset >= len) {
      continue;
    }
    subs.push_back(Sub{s, from + offset,
                       static_cast<uint32_t>((len - offset + n - 1) / n)});
  }
  auto gather = Gather::Create(
      subs.size(), [this, state, from, len, cb, attempt](const std::vector<Status>& ss) {
        for (const Status& s : ss) {
          if (!s.ok()) {
            if (attempt >= 10) {
              cb(s, {});
              return;
            }
            // Target unreachable (possibly a replaced replica) or a slow-path wait
            // outlived the attempt timeout: refresh the shard membership from ZK and
            // retry with backoff.
            RefreshShardConfig([this, from, len, cb, attempt]() {
              endpoint_.loop()->Schedule(
                  RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
                  [this, from, len, cb, attempt]() {
                    ReadAttempt(from, len, cb, attempt + 1);
                  });
            });
            return;
          }
        }
        std::sort(
            state->all.begin(), state->all.end(),
            [](const PositionedRecord& a, const PositionedRecord& b) { return a.pos < b.pos; });
        cb(Status::Ok(), std::move(state->all));
      });
  const uint32_t chunk = std::max<uint32_t>(1, params_.client_read.read_chunk_records);
  const LogPos known_stable = tails_.stable();
  for (size_t i = 0; i < subs.size(); ++i) {
    const Sub& sub = subs[i];
    const auto& replicas = view_.shards[sub.shard];
    auto slot = gather->Slot(i);
    // Record payloads alias the reply's attachments: they stay valid in state->all
    // after the decoder is gone.
    auto merge = [state, slot](Status s, std::vector<PositionedRecord> recs) {
      if (s.ok()) {
        for (PositionedRecord& pr : recs) {
          state->all.push_back(std::move(pr));
        }
      }
      slot(std::move(s), Decoder());
    };
    // A sub whose last position is below the cached stable tail is a known-stable read:
    // its bindings are final on any replica that also considers them stable, so it is
    // routed load-aware and coalesced. A sub reaching at or above the cached stable
    // keeps the old semantics — a waiting read at the shard primary.
    const LogPos last = sub.first + static_cast<uint64_t>(sub.count - 1) * n;
    if (last < known_stable && !replicas.empty()) {
      const NodeId primary = replicas[0];
      const NodeId target = router_.PickStable(replicas);
      std::vector<ReadRange> ranges;
      for (uint32_t j0 = 0; j0 < sub.count; j0 += chunk) {
        ranges.push_back(ReadRange{sub.first + static_cast<uint64_t>(j0) * n,
                                   std::min(chunk, sub.count - j0)});
      }
      coalescer_.Add(target, primary, std::move(ranges), std::move(merge));
    } else {
      coalescer_.ClassicRead(replicas[0], sub.first, sub.count, /*nowait=*/false,
                             std::move(merge));
    }
  }
}

// --- readNext (index tier, §index) ---------------------------------------------------------

void ErwinMClient::ReadNext(LogId log, StreamTag tag, LogPos from, uint32_t max,
                            ReadNextCallback cb) {
  if (tag == kNoTag) {
    cb(Status::InvalidArgument("read-next requires a stream tag"), {}, from);
    return;
  }
  if (view_.index_nodes.empty()) {
    ScanReadNext(log, tag, from, max, std::move(cb));
    return;
  }
  ReadNextViaIndex(log, tag, from, max, std::move(cb), 0);
}

void ErwinMClient::ReadNextViaIndex(LogId log, StreamTag tag, LogPos from, uint32_t max,
                                    ReadNextCallback cb, int attempt) {
  IndexSelectiveRead(&endpoint_, &params_, &view_, client_id_, log, tag, from, max,
                     /*by_rank=*/false, cb,
                     [this, log, tag, from, max, cb, attempt]() {
                       if (attempt >= 3) {
                         ScanReadNext(log, tag, from, max, cb);
                         return;
                       }
                       // The shard fetch (or the index pull itself) failed — likely a
                       // stale replica set rather than a down index tier. Re-resolve
                       // the shard membership and retry the selective path with the
                       // shared jittered backoff before paying for a full scan.
                       RefreshShardConfig([this, log, tag, from, max, cb, attempt]() {
                         endpoint_.loop()->Schedule(
                             RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
                             [this, log, tag, from, max, cb, attempt]() {
                               ReadNextViaIndex(log, tag, from, max, cb, attempt + 1);
                             });
                       });
                     },
                     &router_, &tails_);
}

// --- named-log read / tail (virtual logs) --------------------------------------------------

void ErwinMClient::ReadLog(LogId log, LogPos from, uint64_t len, ReadCallback cb) {
  if (len == 0) {
    cb(Status::Ok(), {});
    return;
  }
  if (view_.index_nodes.empty()) {
    ScanReadLog(log, from, len, std::move(cb));
    return;
  }
  ReadLogViaIndex(log, from, len, std::move(cb), 0);
}

void ErwinMClient::ReadLogViaIndex(LogId log, LogPos from, uint64_t len, ReadCallback cb,
                                   int attempt) {
  // The phylog's positions are ranks in its (log, kNoTag) index list; a by_rank lookup
  // serves [from, from+len) directly and the helper re-labels the records with ranks.
  const uint32_t max = static_cast<uint32_t>(std::min<uint64_t>(len, 1u << 20));
  IndexSelectiveRead(
      &endpoint_, &params_, &view_, client_id_, log, kNoTag, from, max,
      /*by_rank=*/true,
      [cb](Status s, std::vector<PositionedRecord> recs, LogPos) {
        cb(std::move(s), std::move(recs));
      },
      [this, log, from, len, cb, attempt]() {
        if (attempt >= 3) {
          ScanReadLog(log, from, len, cb);
          return;
        }
        RefreshShardConfig([this, log, from, len, cb, attempt]() {
          endpoint_.loop()->Schedule(
              RetryBackoffNs(static_cast<uint32_t>(attempt), rng_.NextDouble()),
              [this, log, from, len, cb, attempt]() {
                ReadLogViaIndex(log, from, len, cb, attempt + 1);
              });
        });
      },
      &router_, &tails_);
}

// --- tail / trim ---------------------------------------------------------------------------

void ErwinMClient::CheckTail(TailCallback cb) { CheckTailAttempt(std::move(cb), 0); }

void ErwinMClient::CheckTailAttempt(TailCallback cb, int attempt) {
  endpoint_.Call(view_.seq_config[0], kSeqCheckTail, "",
                 [this, cb, attempt](Status s, Decoder d) {
                   if (!s.ok()) {
                     if (attempt >= 20) {
                       cb(std::move(s), 0, 0);
                       return;
                     }
                     // Leader unreachable / changed: re-resolve and retry.
                     ProbeThen([this, cb, attempt]() { CheckTailAttempt(cb, attempt + 1); });
                     return;
                   }
                   SeqCheckTailResp resp;
                   if (!resp.Decode(d)) {
                     cb(Status::Internal("bad tail response"), 0, 0);
                     return;
                   }
                   last_tail_view_ = resp.view;
                   tails_.Note(endpoint_.loop()->Now(), resp.durable, resp.stable);
                   cb(Status::Ok(), resp.durable, resp.stable);
                 },
                 5 * kMs);
}

bool ErwinMClient::CachedTail(LogPos* durable, LogPos* stable) {
  if (!tails_.Get(endpoint_.loop()->Now(), params_.client_read.tail_cache_ttl_ns, durable,
                  stable)) {
    return false;
  }
  read_stats_.tail_cache_hits++;
  return true;
}

void ErwinMClient::CheckTailOfLog(LogId log, TailCallback cb) {
  CheckTailOfLogAttempt(log, std::move(cb), 0);
}

void ErwinMClient::CheckTailOfLogAttempt(LogId log, TailCallback cb, int attempt) {
  SeqCheckTailReq req;
  req.log = log;
  endpoint_.CallMsg(view_.seq_config[0], kSeqCheckTail, req,
                    [this, log, cb, attempt](Status s, Decoder d) {
                      if (!s.ok()) {
                        if (attempt >= 20) {
                          cb(std::move(s), 0, 0);
                          return;
                        }
                        ProbeThen([this, log, cb, attempt]() {
                          CheckTailOfLogAttempt(log, cb, attempt + 1);
                        });
                        return;
                      }
                      SeqCheckTailResp resp;
                      if (!resp.Decode(d)) {
                        cb(Status::Internal("bad tail response"), 0, 0);
                        return;
                      }
                      cb(Status::Ok(), resp.durable, resp.stable);
                    },
                    5 * kMs);
}

void ErwinMClient::ResolveLog(const std::string& name,
                              std::function<void(Status, LogId)> cb) {
  if (view_.zk == kInvalidNode) {
    cb(Status::InvalidArgument("unknown log: " + name), kDefaultLog);
    return;
  }
  // Refresh the registry from "/logs/config" and retry the lookup: Open() falls
  // through to here exactly when the installed snapshot predates the log's creation.
  ZkClient zk(&endpoint_, view_.zk);
  zk.GetData("/logs/config",
             [this, name, cb = std::move(cb)](Status s, std::string data, uint64_t) mutable {
               if (s.ok()) {
                 uint64_t epoch = 0;
                 std::vector<LogRegistryEntry> entries;
                 if (DecodeLogConfig(data, &epoch, &entries) && epoch > view_.log_epoch) {
                   view_.log_epoch = epoch;
                   view_.logs = entries;
                   InstallLogRegistry(std::move(entries));
                 }
               }
               for (const LogRegistryEntry& entry : log_registry()) {
                 if (entry.name == name && !entry.deleted) {
                   cb(Status::Ok(), entry.id);
                   return;
                 }
               }
               cb(Status::InvalidArgument("unknown log: " + name), kDefaultLog);
             },
             5 * kMs);
}

void ErwinMClient::Trim(LogPos index, TrimCallback cb) { TrimAttempt(index, std::move(cb), 0); }

void ErwinMClient::TrimAttempt(LogPos index, TrimCallback cb, int attempt) {
  TrimMsg msg{index};
  endpoint_.CallMsg(view_.seq_config[0], kSeqTrim, msg,
                    [this, index, cb, attempt](Status s, Decoder) {
                      if (!s.ok() && attempt < 20) {
                        ProbeThen([this, index, cb, attempt]() {
                          TrimAttempt(index, cb, attempt + 1);
                        });
                        return;
                      }
                      cb(std::move(s));
                    },
                    10 * kMs);
}

// --- appendSync (§5.5 extension) ------------------------------------------------------------

void ErwinMClient::AppendSync(Buf payload, AppendCallback cb) {
  Append(AppendOptions{}, std::move(payload), [this, cb](Status st) {
    if (!st.ok()) {
      cb(std::move(st));
      return;
    }
    // The record is durable; now wait until the stable prefix has passed the durable
    // tail observed at ack time, i.e. the record's binding is final.
    CheckTail([this, cb](Status s, LogPos durable_count, LogPos) {
      if (!s.ok()) {
        cb(std::move(s));
        return;
      }
      PollStable(durable_count, cb);
    });
  });
}

void ErwinMClient::PollStable(LogPos target, AppendCallback cb) {
  CheckTail([this, target, cb](Status s, LogPos, LogPos stable) {
    if (!s.ok()) {
      cb(std::move(s));
      return;
    }
    if (stable >= target) {
      cb(Status::Ok());
      return;
    }
    endpoint_.loop()->Schedule(params_.seq.ordering_interval_ns,
                               [this, target, cb]() { PollStable(target, cb); });
  });
}

}  // namespace lazylog
