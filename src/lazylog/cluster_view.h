// A client's view of the Erwin cluster topology.
#ifndef SRC_LAZYLOG_CLUSTER_VIEW_H_
#define SRC_LAZYLOG_CLUSTER_VIEW_H_

#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/common/types.h"
#include "src/seq/seq_messages.h"

namespace lazylog {

struct ClusterView {
  ViewId view = 0;
  // Sequencing replicas; seq_config[0] is the leader.
  std::vector<NodeId> seq_config;
  // shards[s] lists shard s's replicas; shards[s][0] is the primary.
  std::vector<std::vector<NodeId>> shards;
  // Epoch of `shards` (bumped by the controller on every membership change). Clients
  // adopt a refreshed matrix only when its epoch is newer.
  uint64_t shard_epoch = 0;
  // Index-tier nodes (selective reads). Empty = no index tier; ReadNext falls back to
  // scanning. Clients spread lookups over these round-robin by client id.
  std::vector<NodeId> index_nodes;
  // ZooKeeperLite node for config refresh; kInvalidNode when there is no control plane
  // (clients then keep their construction-time shard membership).
  NodeId zk = kInvalidNode;
  // Log registry snapshot (named phylogs) at view construction time; clients refresh
  // from "/logs/config" when a name is missing. Empty = single-log deployment.
  std::vector<LogRegistryEntry> logs;
  // Epoch of `logs` (bumped by the controller on every create/delete).
  uint64_t log_epoch = 0;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

// Parses the controller's "/shards/config" znode: epoch, then the replica matrix. Each
// shard's replica list is followed by its promotion epoch (bumped on every primary
// failover). Returns false on a malformed blob.
inline bool DecodeShardConfig(const std::string& blob, uint64_t* epoch,
                              std::vector<std::vector<NodeId>>* shards,
                              std::vector<uint64_t>* promo_epochs = nullptr) {
  Decoder d(blob);
  uint32_t num_shards = 0;
  if (!d.GetU64(epoch) || !d.GetU32(&num_shards)) {
    return false;
  }
  shards->clear();
  if (promo_epochs != nullptr) {
    promo_epochs->clear();
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint32_t count = 0;
    if (!d.GetU32(&count)) {
      return false;
    }
    std::vector<NodeId> replicas;
    for (uint32_t r = 0; r < count; ++r) {
      NodeId n = kInvalidNode;
      if (!d.GetU32(&n)) {
        return false;
      }
      replicas.push_back(n);
    }
    uint64_t promo_epoch = 0;
    if (!d.GetU64(&promo_epoch)) {
      return false;
    }
    if (promo_epochs != nullptr) {
      promo_epochs->push_back(promo_epoch);
    }
    shards->push_back(std::move(replicas));
  }
  return true;
}

// Parses the controller's "/logs/config" znode (the SeqUpdateLogsReq wire format):
// registry epoch, then the full entry list including deletion tombstones.
inline bool DecodeLogConfig(const std::string& blob, uint64_t* epoch,
                            std::vector<LogRegistryEntry>* entries) {
  Decoder d(blob);
  SeqUpdateLogsReq req;
  if (!req.Decode(d)) {
    return false;
  }
  *epoch = req.epoch;
  *entries = std::move(req.entries);
  return true;
}

}  // namespace lazylog

#endif  // SRC_LAZYLOG_CLUSTER_VIEW_H_
