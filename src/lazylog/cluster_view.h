// A client's view of the Erwin cluster topology.
#ifndef SRC_LAZYLOG_CLUSTER_VIEW_H_
#define SRC_LAZYLOG_CLUSTER_VIEW_H_

#include <vector>

#include "src/common/types.h"

namespace lazylog {

struct ClusterView {
  ViewId view = 0;
  // Sequencing replicas; seq_config[0] is the leader.
  std::vector<NodeId> seq_config;
  // shards[s] lists shard s's replicas; shards[s][0] is the primary.
  std::vector<std::vector<NodeId>> shards;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

}  // namespace lazylog

#endif  // SRC_LAZYLOG_CLUSTER_VIEW_H_
