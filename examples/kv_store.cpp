// Example: a writer/reader-decoupled KV store (Firescroll-style, §6.11) on top of the
// LazyLog API. Writers get 1-RTT durable puts; a read server consumes the log at its
// own pace and serves eventually consistent gets.
#include <cstdio>

#include "src/apps/kvstore.h"
#include "src/lazylog/erwin_cluster.h"

using namespace lazylog;

int main() {
  ErwinClusterOptions options;
  options.mode = ErwinMode::kM;
  options.num_shards = 1;
  options.shard_replication = 3;
  options.with_control_plane = false;
  ErwinCluster cluster(options);

  // The write and read servers each own a LazyLog client.
  KvWriteServer writer(&cluster.network(), cluster.params(), cluster.MakeClient());
  KvReadServer reader(&cluster.network(), cluster.params(), cluster.MakeClient());
  KvClient client(&cluster.network(), cluster.params(), writer.node_id(), reader.node_id());

  // A few puts through the write path.
  const char* cities[] = {"austin", "urbana", "seattle"};
  const char* temps[] = {"35C", "28C", "18C"};
  for (int i = 0; i < 3; ++i) {
    client.Put(cities[i], temps[i], [i, &cities](bool ok) {
      std::printf("put(%s) -> %s\n", cities[i], ok ? "ok" : "failed");
    });
    cluster.RunFor(200 * kUs);
  }

  // Let the read server catch up with the log, then read.
  cluster.RunFor(10 * kMs);
  for (const char* city : cities) {
    client.Get(city, [city](Status s, std::string value) {
      std::printf("get(%s) -> %s (%s)\n", city, value.c_str(), s.ToString().c_str());
    });
  }
  cluster.RunFor(5 * kMs);

  std::printf("read server applied %llu updates across %zu keys\n",
              static_cast<unsigned long long>(reader.applied()), reader.keys());
  return 0;
}
