// Example: synchronous audit logging for a transaction-processing service (§6.11).
// Every transaction executes against a local store and appends an audit record to the
// shared log before acknowledging; LazyLog makes that synchronous append cheap.
#include <cstdio>

#include "src/apps/logagg.h"
#include "src/lazylog/erwin_cluster.h"

using namespace lazylog;

int main() {
  ErwinClusterOptions options;
  options.mode = ErwinMode::kM;
  options.num_shards = 1;
  options.shard_replication = 3;
  options.with_control_plane = false;
  ErwinCluster cluster(options);

  TxnServer server(&cluster.network(), cluster.params(), cluster.MakeClient());
  TxnClient client(&cluster.network(), cluster.params(), server.node_id());

  struct Step {
    TxnType type;
    uint64_t account;
    int64_t amount;
    const char* what;
  };
  const Step steps[] = {
      {TxnType::kCreateAccount, 42, 0, "create account 42"},
      {TxnType::kDeposit, 42, 100, "deposit 100 -> 42"},
      {TxnType::kWithdraw, 42, 30, "withdraw 30 <- 42"},
      {TxnType::kBalanceQuery, 42, 0, "balance(42)?"},
      {TxnType::kTransfer, 42, 50, "transfer 50: 42 -> 43"},
  };
  for (const Step& s : steps) {
    const SimTime start = cluster.loop().Now();
    client.Execute(s.type, s.account, s.amount, [&, start](bool ok) {
      std::printf("%-22s -> %-4s (%.1f us, audit logged)\n", s.what, ok ? "ok" : "fail",
                  static_cast<double>(cluster.loop().Now() - start) / 1000.0);
    });
    cluster.RunFor(1 * kMs);
  }
  std::printf("committed transactions: %llu (each with a synchronous audit append)\n",
              static_cast<unsigned long long>(server.committed()));
  return 0;
}
