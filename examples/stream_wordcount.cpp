// Example: journaled stream processing (§6.11). Word-count workers checkpoint their
// produced state to the shared log before emitting, giving exactly-once semantics on
// failover; LazyLog keeps the checkpoint appends off the latency budget.
#include <cstdio>

#include "src/apps/streamproc.h"
#include "src/lazylog/erwin_cluster.h"

using namespace lazylog;

int main() {
  ErwinClusterOptions options;
  options.mode = ErwinMode::kM;
  options.num_shards = 1;
  options.shard_replication = 3;
  options.with_control_plane = false;
  ErwinCluster cluster(options);

  // Two workers, small batches (checkpoint-heavy regime).
  std::vector<std::unique_ptr<WordCountWorker>> workers;
  for (int i = 0; i < 2; ++i) {
    WordCountWorker::Options wopt;
    wopt.batch_size = 200;
    wopt.max_batches = 50;
    workers.push_back(std::make_unique<WordCountWorker>(&cluster.loop(),
                                                        cluster.MakeClient(), wopt, 60 + i));
    workers.back()->Start();
  }
  cluster.RunFor(200 * kMs);

  uint64_t batches = 0, records = 0;
  Histogram latency;
  for (auto& w : workers) {
    batches += w->batches_emitted();
    records += w->records_emitted();
    latency.Merge(w->record_latency());
  }
  std::printf("emitted %llu batches / %llu records\n",
              static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(records));
  std::printf("per-record processed+journaled+emitted latency: %s\n",
              latency.Summary().c_str());
  std::printf("sample counts from worker 0:\n");
  int shown = 0;
  for (const auto& [word, count] : workers[0]->counts()) {
    std::printf("  %-8s %llu\n", word.c_str(), static_cast<unsigned long long>(count));
    if (++shown == 5) {
      break;
    }
  }
  return 0;
}
