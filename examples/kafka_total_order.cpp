// Example: bolting Erwin-m's sequencing layer onto off-the-shelf Kafka-style shards
// (§6.8). Standalone KafkaLite only orders within a shard and pays linger+replication
// latency on every produce; Erwin-m in front delivers linearizable total order across
// the Kafka shards with 1-RTT appends, pushing to Kafka in the background.
#include <cstdio>

#include "src/baselines/kafkalite/kafkalite.h"
#include "src/lazylog/erwin_m_client.h"
#include "src/seq/sequencing_replica.h"

using namespace lazylog;

int main() {
  SimParams params;
  EventLoop loop;
  Network net(&loop, params.net, params.seed);

  // Two KafkaLite partitions (leader + follower each) behind black-box shard adapters.
  std::vector<std::unique_ptr<KafkaBroker>> brokers;
  std::vector<std::unique_ptr<KafkaShardAdapter>> adapters;
  std::vector<NodeId> adapter_ids;
  for (uint32_t p = 0; p < 2; ++p) {
    auto leader = std::make_unique<KafkaBroker>(&net, params, p, true);
    auto follower = std::make_unique<KafkaBroker>(&net, params, p, false);
    leader->SetFollowers({follower->node_id()});
    adapters.push_back(std::make_unique<KafkaShardAdapter>(&net, params, p, leader->node_id()));
    adapter_ids.push_back(adapters.back()->node_id());
    brokers.push_back(std::move(leader));
    brokers.push_back(std::move(follower));
  }

  // Erwin-m sequencing layer in front of the Kafka shards.
  std::vector<std::unique_ptr<SequencingReplica>> seq;
  std::vector<NodeId> seq_ids;
  for (int i = 0; i < params.seq.num_replicas; ++i) {
    seq.push_back(std::make_unique<SequencingReplica>(&net, params, ErwinMode::kM, i));
    seq_ids.push_back(seq.back()->node_id());
  }
  for (auto& rep : seq) {
    rep->Start(seq_ids, adapter_ids, adapter_ids);
  }

  ClusterView view;
  view.seq_config = seq_ids;
  for (NodeId a : adapter_ids) {
    view.shards.push_back({a});
  }
  ErwinMClient client(&net, params, view, /*client_id=*/1);
  LogHandle log = client.log();

  // Appends complete at the sequencing layer in ~1 RTT (microseconds), even though the
  // backing Kafka shards take milliseconds to replicate.
  for (int i = 0; i < 6; ++i) {
    const SimTime start = loop.Now();
    log.Append("msg-" + std::to_string(i), [&, i, start](Status s) {
      std::printf("append(msg-%d) -> %s in %.1f us\n", i, s.ok() ? "durable" : "failed",
                  static_cast<double>(loop.Now() - start) / 1000.0);
    });
    loop.RunUntil(loop.Now() + 200 * kUs);
  }

  // Background ordering pushes to the Kafka shards; reads return the total order.
  loop.RunUntil(loop.Now() + 50 * kMs);
  log.Read(0, 6, [](Status s, std::vector<PositionedRecord> records) {
    std::printf("total order across 2 Kafka shards (%s):\n", s.ToString().c_str());
    for (const auto& pr : records) {
      std::printf("  pos %llu: %s (kafka shard %llu)\n",
                  static_cast<unsigned long long>(pr.pos), pr.record.payload.ToString().c_str(),
                  static_cast<unsigned long long>(pr.pos % 2));
    }
  });
  loop.RunUntil(loop.Now() + 20 * kMs);
  return 0;
}
