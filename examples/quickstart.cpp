// Quickstart: bring up an Erwin-m cluster on the simulated testbed, append a few
// records, check the tail, read them back, and trim. Shows the LazyLog API (Figure 2)
// end to end: appends return only a durability flag; the linearizable binding is
// established lazily, before reads are served.
#include <cstdio>

#include "src/lazylog/erwin_cluster.h"

using namespace lazylog;

int main() {
  // A LazyLog deployment: 3-replica sequencing layer, 2 primary-backup shards,
  // ZooKeeperLite + controller for failure handling.
  ErwinClusterOptions options;
  options.mode = ErwinMode::kM;
  options.num_shards = 2;
  options.shard_replication = 2;
  ErwinCluster cluster(options);
  auto client = cluster.MakeClient();
  // The default handle is the physical log; Open("name") would hand back a named
  // virtual log sharing the same cluster (see examples/kv_store.cpp).
  LogHandle log = client->log();

  // Append: completes in 1 RTT once durable on all sequencing replicas. No position is
  // returned — LazyLog binds records to positions lazily (§3.2).
  for (int i = 0; i < 5; ++i) {
    log.Append("event-" + std::to_string(i), [i](Status s) {
      std::printf("append(event-%d) -> %s\n", i, s.ok() ? "durable" : s.message().c_str());
    });
    cluster.RunFor(100 * kUs);  // sequential appends: real-time order is preserved
  }

  // Give background ordering a moment, then inspect the tail.
  cluster.RunFor(5 * kMs);
  log.CheckTail([](Status s, LogPos durable, LogPos stable) {
    std::printf("checkTail -> durable=%llu stable=%llu (%s)\n",
                static_cast<unsigned long long>(durable),
                static_cast<unsigned long long>(stable), s.ToString().c_str());
  });
  cluster.RunFor(1 * kMs);

  // Read the whole log: records come back in their final linearizable order.
  log.Read(0, 5, [](Status s, std::vector<PositionedRecord> records) {
    std::printf("read(0,5) -> %s\n", s.ToString().c_str());
    for (const auto& pr : records) {
      std::printf("  pos %llu: %s\n", static_cast<unsigned long long>(pr.pos),
                  pr.record.payload.ToString().c_str());
    }
  });
  cluster.RunFor(5 * kMs);

  // Trim the consumed prefix.
  log.Trim(3, [](Status s) { std::printf("trim(3) -> %s\n", s.ToString().c_str()); });
  cluster.RunFor(5 * kMs);
  log.Read(3, 2, [](Status s, std::vector<PositionedRecord> records) {
    std::printf("read(3,2) after trim -> %s, %zu records\n", s.ToString().c_str(),
                records.size());
  });
  cluster.RunFor(5 * kMs);
  return 0;
}
